"""Static checks on assembled VLIW programs.

On a VLIW model, instructions of one execute packet run in the same
cycle; two of them writing the same storage cell is almost always a
bug (on this substrate the later slot silently wins -- and the load
unit's in-flight address queue is a storage cell too, so two parallel
loads corrupt each other).  The linter decodes every execute packet and
reports write-set collisions between its members.

The effects walk lives in :mod:`repro.analysis.effects` (shared with
CFG recovery and hazard analysis); this module keeps the historical
assembler-facing surface -- ``written_cells`` and ``lint_vliw_packets``
-- as thin wrappers over :class:`~repro.analysis.effects.
EffectsAnalyzer`.  Delegating also fixed an off-by-one in the old
walker's recursion guard, which allowed sub-operation chains one level
past the documented depth limit.
"""

from __future__ import annotations

from repro.analysis.effects import (
    EffectsAnalyzer,
    cells_collide as _cells_collide,  # noqa: F401  (compat re-export)
    classify_lvalue as _classify,  # noqa: F401  (compat re-export)
    packet_collisions,
)
from repro.coding.decoder import InstructionDecoder
from repro.machine.packets import packet_extent
from repro.support.errors import DecodeError


def written_cells(node, model, codegen):
    """All storage cells an instruction instance may write.

    Walks the decode-time-resolved schedule (so only the selected
    variants count) including sub-operation invocations; conditional
    writes inside run-time IFs are included conservatively.
    """
    return EffectsAnalyzer(model, codegen).written_cells(node)


def lint_vliw_packets(model, program):
    """Lint every execute packet of a VLIW program.

    Returns a deduplicated list of human-readable warning strings,
    sorted by packet address; empty when clean.  Non-VLIW models always
    lint clean.
    """
    if not model.is_vliw:
        return []
    decoder = InstructionDecoder(model)
    analyzer = EffectsAnalyzer(model)
    warnings = []
    for segment in program.segments_in(model.config.program_memory):
        words = segment.words
        base = segment.base
        limit = base + len(words)

        def read_word(address, _words=words, _base=base):
            return _words[address - _base]

        pc = base
        while pc < limit:
            extent = packet_extent(model, read_word, pc, limit)
            if extent > 1:
                members = []
                for address in range(pc, pc + extent):
                    try:
                        node = decoder.decode(read_word(address),
                                              address=address)
                    except DecodeError:
                        continue  # undecodable words are data
                    members.append((address, analyzer.effects_of(node)))
                warnings.extend(
                    finding.message
                    for finding in packet_collisions(members, packet_pc=pc)
                )
            pc += extent
    return warnings
