"""Static checks on assembled VLIW programs.

On a VLIW model, instructions of one execute packet run in the same
cycle; two of them writing the same storage cell is almost always a
bug (on this substrate the later slot silently wins -- and the load
unit's in-flight address queue is a storage cell too, so two parallel
loads corrupt each other).  The linter decodes every execute packet and
reports write-set collisions between its members.

Cells are identified by the code generator's resolved lvalue text:
constant-folded element accesses (``s.lsq[0]``) compare exactly, while
a computed index degrades to a whole-resource wildcard.
"""

from __future__ import annotations

import re

from repro.behavior import ast as bast
from repro.behavior.codegen import BehaviorCodegen
from repro.coding.decoder import InstructionDecoder
from repro.machine.packets import packet_extent
from repro.machine.schedule import build_schedule
from repro.support.errors import DecodeError, ReproError

_ELEMENT = re.compile(r"^s\.(\w+)\[(\-?\d+)\]$")
_SCALAR = re.compile(r"^s\.(\w+)$")
_WILDCARD = re.compile(r"^s\.(\w+)\[")


def _classify(lvalue_source):
    """Map a generated lvalue to a cell key: (resource, element|None|'*')."""
    match = _ELEMENT.match(lvalue_source)
    if match:
        return (match.group(1), match.group(2))
    match = _SCALAR.match(lvalue_source)
    if match:
        return (match.group(1), None)
    match = _WILDCARD.match(lvalue_source)
    if match:
        return (match.group(1), "*")
    return None  # behaviour-local: not architectural


def _cells_collide(a, b):
    if a[0] != b[0]:
        return False
    return a[1] == b[1] or a[1] == "*" or b[1] == "*"


def written_cells(node, model, codegen, _depth=0):
    """All storage cells an instruction instance may write.

    Walks the decode-time-resolved schedule (so only the selected
    variants count) including sub-operation invocations; conditional
    writes inside run-time IFs are included conservatively.
    """
    cells = set()
    if _depth > 16:
        return cells
    for item in build_schedule(node, model):
        cells |= _statement_cells(
            item.behavior.statements, item.node, model, codegen, _depth
        )
    return cells


def _statement_cells(statements, node, model, codegen, depth):
    cells = set()
    for stmt in statements:
        for sub in bast.walk(stmt):
            if isinstance(sub, bast.Assign):
                try:
                    source, _ = codegen._lvalue(sub.target, node)
                except ReproError:
                    continue  # reported elsewhere; not a lint concern
                cell = _classify(source)
                if cell is not None:
                    cells.add(cell)
            elif isinstance(sub, bast.Call):
                child = node.children.get(sub.name)
                if child is None and sub.name in node.operation.references:
                    kind, payload = node.lookup(sub.name)
                    child = payload if kind == "child" else None
                if child is not None and depth <= 16:
                    variant = child.variant(model)
                    for behavior in variant.behaviors:
                        cells |= _statement_cells(
                            behavior.statements, child, model, codegen,
                            depth + 1,
                        )
    return cells


def lint_vliw_packets(model, program):
    """Lint every execute packet of a VLIW program.

    Returns a list of human-readable warning strings; empty when clean.
    Non-VLIW models always lint clean.
    """
    if not model.is_vliw:
        return []
    decoder = InstructionDecoder(model)
    codegen = BehaviorCodegen(model)
    warnings = []
    for segment in program.segments_in(model.config.program_memory):
        words = segment.words
        base = segment.base
        limit = base + len(words)

        def read_word(address, _words=words, _base=base):
            return _words[address - _base]

        pc = base
        while pc < limit:
            extent = packet_extent(model, read_word, pc, limit)
            if extent > 1:
                warnings.extend(
                    _lint_packet(model, decoder, codegen, read_word, pc,
                                 extent)
                )
            pc += extent
    return warnings


def _lint_packet(model, decoder, codegen, read_word, pc, extent):
    members = []
    for address in range(pc, pc + extent):
        try:
            node = decoder.decode(read_word(address), address=address)
        except DecodeError:
            continue  # undecodable words are data, not packet members
        members.append((address, written_cells(node, model, codegen)))
    warnings = []
    for i, (addr_a, cells_a) in enumerate(members):
        for addr_b, cells_b in members[i + 1:]:
            for cell_a in cells_a:
                for cell_b in cells_b:
                    if _cells_collide(cell_a, cell_b):
                        warnings.append(
                            "packet at 0x%x: parallel instructions at "
                            "0x%x and 0x%x both write %s"
                            % (pc, addr_a, addr_b,
                               _cell_text(cell_a, cell_b))
                        )
    return warnings


def _cell_text(cell_a, cell_b):
    resource = cell_a[0]
    element = cell_a[1] if cell_a[1] != "*" else cell_b[1]
    if element is None:
        return resource
    if element == "*":
        return "%s[...]" % resource
    return "%s[%s]" % (resource, element)
