"""Target program container ("object file") and loader.

A :class:`Program` is the output of the assembler and the input of both
the simulation compiler and the simulators: a set of memory segments
(program words and initialised data), an entry point and a symbol table.

Programs serialise to a simple JSON-compatible dict so they can be kept
on disk next to the model (``.dspo`` files in the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.support.errors import ReproError


@dataclass
class Segment:
    """A contiguous block of words for one memory resource."""

    memory: str
    base: int
    words: List[int]

    @property
    def end(self):
        return self.base + len(self.words)

    def overlaps(self, other):
        return (
            self.memory == other.memory
            and self.base < other.end
            and other.base < self.end
        )


@dataclass
class Program:
    """An executable target program.

    ``lint_warnings`` carries assembler diagnostics (e.g. VLIW packet
    write-collisions); it is advisory and not serialised.
    """

    name: str = "program"
    entry: int = 0
    segments: List[Segment] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    lint_warnings: List[str] = field(default_factory=list, repr=False)

    def add_segment(self, memory, base, words):
        segment = Segment(memory, base, list(words))
        for existing in self.segments:
            if segment.overlaps(existing):
                raise ReproError(
                    "segment at %s[%d:%d] overlaps segment at %s[%d:%d]"
                    % (
                        memory,
                        base,
                        segment.end,
                        existing.memory,
                        existing.base,
                        existing.end,
                    )
                )
        self.segments.append(segment)
        return segment

    def segments_in(self, memory):
        return [s for s in self.segments if s.memory == memory]

    def word_count(self, memory=None):
        return sum(
            len(s.words)
            for s in self.segments
            if memory is None or s.memory == memory
        )

    def load_into(self, state):
        """Write all segments into a processor state and set the PC."""
        for segment in self.segments:
            state.load_words(segment.memory, segment.base, segment.words)
        state.pc = self.entry

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "entry": self.entry,
            "symbols": dict(self.symbols),
            "segments": [
                {"memory": s.memory, "base": s.base, "words": list(s.words)}
                for s in self.segments
            ],
        }

    @classmethod
    def from_dict(cls, data):
        program = cls(
            name=data.get("name", "program"),
            entry=data.get("entry", 0),
            symbols=dict(data.get("symbols", {})),
        )
        for seg in data.get("segments", []):
            program.add_segment(seg["memory"], seg["base"], seg["words"])
        return program

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
