"""Program profiler built on the simulator front-end hook.

One more member of the generated tool suite: per-address fetch counts,
execute-packet statistics and a source-annotated hot-spot listing --
the kind of feedback loop (simulate, profile, re-schedule) that DSP
software development lives on.

Works with every simulator kind by wrapping its front-end, so profiling
a compiled simulation measures the same cycle stream as the
interpretive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.support.errors import SimulationError


@dataclass
class ProfileReport:
    """Per-address fetch statistics for one run."""

    fetch_counts: Dict[int, int] = field(default_factory=dict)
    issue_cycles: int = 0
    bubble_cycles: int = 0
    total_cycles: int = 0

    @property
    def hottest(self):
        """Addresses sorted by descending fetch count."""
        return sorted(
            self.fetch_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )

    def annotate(self, disassembler, program, limit=None):
        """Hot-spot listing lines: count, address, disassembly."""
        listing = {}
        for line in disassembler.disassemble_program(program):
            address_text, text = line.split(":", 1)
            listing[int(address_text, 16)] = text.strip()
        lines = []
        for address, count in self.hottest[:limit]:
            lines.append(
                "%10d  %06x: %s"
                % (count, address, listing.get(address, "?"))
            )
        return lines


class Profiler:
    """Wraps a simulator to collect fetch statistics.

    Usage::

        sim = tools.new_simulator("compiled")
        sim.load_program(program)
        profiler = Profiler(sim)
        sim.run()
        report = profiler.report()
    """

    def __init__(self, simulator):
        engine = simulator.engine
        if hasattr(engine, "_interned"):
            # Statically scheduled engines bypass the front-end on
            # cached transitions, so per-fetch counting cannot see every
            # issue there.
            raise SimulationError(
                "profiling needs a per-fetch front-end; use simulator "
                "kind interpretive, predecoded, compiled or unfolded"
            )
        self._report = ProfileReport()
        self._engine = engine
        original = engine._frontend

        def counting_frontend(pc, _original=original,
                              _counts=self._report.fetch_counts):
            slot = _original(pc)
            if slot is not None:
                _counts[pc] = _counts.get(pc, 0) + 1
            return slot

        engine._frontend = counting_frontend

    def report(self):
        report = self._report
        report.total_cycles = self._engine.cycles
        report.issue_cycles = sum(report.fetch_counts.values())
        report.bubble_cycles = report.total_cycles - report.issue_cycles
        return report
