"""Program profiler built on the observability hooks.

One more member of the generated tool suite: per-address fetch counts,
execute-packet statistics, bubble-cycle attribution and a
source-annotated hot-spot listing -- the kind of feedback loop
(simulate, profile, re-schedule) that DSP software development lives on.

The profiler is a thin consumer of :mod:`repro.obs`: it attaches a
metrics-only :class:`repro.obs.Observer` (``record=False``, so no event
list grows during the run) and reads the registry afterwards.  Because
the statically scheduled engines emit the same per-cycle hooks as the
per-fetch kinds, profiling now works on *every* simulator kind --
including ``static`` and ``unfolded_static``, which the old front-end
wrapper could not see into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ProfileReport:
    """Per-address fetch statistics for one run.

    ``bubbles_by_reason`` attributes every non-issuing cycle to why it
    issued nothing: ``"stall"`` (a behaviour requested stall cycles),
    ``"drain"`` (the pipeline emptying after halt) or ``"frontend"``
    (no slot at the fetch address).  ``packet_sizes`` summarises the
    execute-packet-level statistics as a ``{size: packets}`` histogram.
    """

    fetch_counts: Dict[int, int] = field(default_factory=dict)
    issue_cycles: int = 0
    bubble_cycles: int = 0
    total_cycles: int = 0
    instructions_issued: int = 0
    squashed_slots: int = 0
    bubbles_by_reason: Dict[str, int] = field(default_factory=dict)
    packet_sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def hottest(self):
        """Addresses sorted by descending fetch count."""
        return sorted(
            self.fetch_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )

    @property
    def mean_packet_size(self):
        """Mean instructions per issued execute packet (NaN if none)."""
        if not self.issue_cycles:
            return float("nan")
        return self.instructions_issued / self.issue_cycles

    def annotate(self, disassembler, program, limit=None):
        """Hot-spot listing lines: count, address, disassembly."""
        listing = {}
        for line in disassembler.disassemble_program(program):
            address_text, text = line.split(":", 1)
            listing[int(address_text, 16)] = text.strip()
        lines = []
        for address, count in self.hottest[:limit]:
            lines.append(
                "%10d  %06x: %s"
                % (count, address, listing.get(address, "?"))
            )
        return lines


class Profiler:
    """Attaches a metrics-only observer to a simulator.

    Usage::

        sim = tools.new_simulator("compiled")
        sim.load_program(program)
        profiler = Profiler(sim)
        sim.run()
        report = profiler.report()

    Works with every simulator kind.  Attaching replaces any observer
    already on the simulator; to profile *and* trace, pass one
    full-recording :class:`repro.obs.Observer` to the simulator
    yourself and build the report with :meth:`report_from`.
    """

    def __init__(self, simulator):
        from repro.obs import Observer

        self._simulator = simulator
        self._observer = Observer(record=False)
        simulator.attach_observer(self._observer)

    @property
    def observer(self):
        return self._observer

    def report(self):
        return self.report_from(self._observer, self._simulator)

    @staticmethod
    def report_from(observer, simulator=None):
        """Build a :class:`ProfileReport` from any observer's metrics.

        ``total_cycles`` comes from the engine when ``simulator`` is
        given (matching ``simulator.cycles`` exactly), otherwise from
        the issue/bubble counters.
        """
        metrics = observer.metrics
        issue = metrics.counter("sim.issue_cycles")
        bubble = metrics.counter("sim.bubble_cycles")
        if simulator is not None and simulator.program is not None:
            total = simulator.engine.cycles
        else:
            total = issue + bubble
        return ProfileReport(
            fetch_counts=dict(metrics.family("sim.fetch_by_pc")),
            issue_cycles=issue,
            bubble_cycles=bubble,
            total_cycles=total,
            instructions_issued=metrics.counter("sim.instructions_issued"),
            squashed_slots=metrics.counter("sim.squashed_slots"),
            bubbles_by_reason=dict(metrics.family("sim.bubbles_by_reason")),
            packet_sizes=dict(metrics.family("sim.packet_sizes")),
        )
