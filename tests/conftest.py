"""Shared fixtures: compiled models, toolsets, and a tiny test model."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.api import build_toolset
from repro.lisa.semantics import compile_source
from repro.models import load_model

# Property tests exercise compiled behaviours and whole simulators; on
# the small CI boxes this repo targets, a bounded example budget keeps
# the suite fast while still covering the invariants.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session", autouse=True)
def _verify_ir_everywhere():
    """Run the whole suite with the IR verifier armed.

    Every ``run_passes`` call in every test then checks well-formedness
    before and after each optimisation pass, so a pass-pipeline bug
    fails loudly in whichever test first lowers IR -- not as a
    miscompile three layers later.
    """
    from repro.simcc import verify

    previous = verify.set_verify_default(True)
    yield
    verify.set_verify_default(previous)

# A small but feature-complete model used by unit tests that need full
# control over the description (distinct from the shipped tinydsp).
TESTMODEL_SOURCE = r"""
MODEL testmodel;
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[8];
    REGISTER int16 ACC;
    MEMORY uint16 pmem[256];
    MEMORY int dmem[64];
    PIPELINE pipe = { FE; DE; EX; WB };
}
CONFIG {
    WORDSIZE(16);
    PROGRAM_MEMORY(pmem);
    ROOT(insn);
    EXECUTE_STAGE(EX);
    BRANCH_POLICY(flush);
    DEFINE(SHORT, 0);
    DEFINE(LONG, 1);
}

OPERATION reg {
    DECLARE { LABEL idx; }
    CODING { idx[3] }
    SYNTAX { "r" idx }
    EXPRESSION { R[idx] }
}

OPERATION add IN pipe.EX {
    DECLARE { GROUP dst = { reg }; GROUP src1 = { reg };
              GROUP src2 = { reg }; REFERENCE mode; }
    CODING { 0b0001 dst src1 src2 0bxx }
    IF (mode == SHORT) {
        SYNTAX { "add" dst "," src1 "," src2 }
        BEHAVIOR { dst = src1 + src2; }
    } ELSE {
        SYNTAX { "addl" dst "," src1 "," src2 }
        BEHAVIOR { dst = sat(src1 + src2, 8); }
    }
}

OPERATION ldi IN pipe.EX {
    DECLARE { GROUP dst = { reg }; LABEL imm; }
    CODING { 0b0010 dst imm[8] }
    SYNTAX { "ldi" dst "," imm }
    BEHAVIOR { dst = sext(imm, 8); }
}

OPERATION st IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL addr; }
    CODING { 0b0011 src addr[6] 0bxx }
    SYNTAX { "st" src "," addr }
    BEHAVIOR { dmem[addr] = src; }
    ACTIVATION { note_store }
}

OPERATION note_store IN pipe.WB {
    /* A helper activated into a later stage, reading the parent's
     * operands through REFERENCE -- exercises cross-stage activation. */
    DECLARE { REFERENCE addr; }
    BEHAVIOR { ACC = ACC + addr; }
}

OPERATION brnz IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL target; }
    CODING { 0b0100 src target[8] }
    SYNTAX { "brnz" src "," target }
    BEHAVIOR {
        IF (src != 0) {
            PC = target;
            flush();
        }
    }
}

OPERATION halt_op IN pipe.EX {
    CODING { 0b0101 0b00000000000 }
    SYNTAX { "halt" }
    BEHAVIOR { halt(); }
}

OPERATION nop IN pipe.EX {
    CODING { 0b0000 0b00000000000 }
    SYNTAX { "nop" }
    BEHAVIOR { }
}

OPERATION insn {
    DECLARE {
        GROUP op = { nop || add || ldi || st || brnz || halt_op };
        LABEL mode;
    }
    CODING { mode[1] op }
    SYNTAX { op }
    ACTIVATION { op }
}
"""


@pytest.fixture(scope="session")
def testmodel():
    return compile_source(TESTMODEL_SOURCE, "testmodel.lisa")


@pytest.fixture(scope="session")
def testmodel_tools(testmodel):
    return build_toolset(testmodel)


@pytest.fixture(scope="session")
def tinydsp():
    return load_model("tinydsp")


@pytest.fixture(scope="session")
def c54x():
    return load_model("c54x")


@pytest.fixture(scope="session")
def c62x():
    return load_model("c62x")


@pytest.fixture(scope="session")
def tinydsp_tools(tinydsp):
    return build_toolset(tinydsp)


@pytest.fixture(scope="session")
def c54x_tools(c54x):
    return build_toolset(c54x)


@pytest.fixture(scope="session")
def c62x_tools(c62x):
    return build_toolset(c62x)
