"""Tests for the abstract-interpretation framework over SimIR.

Three layers of guarantees:

* *Domain correctness* -- unit tests over the interval and known-bits
  transfer functions, including the reduced-product refinement the
  interval domain alone cannot prove (``(a & 0xF0) | (b & 0x0F)`` is
  ``[0, 255]`` for unbounded ``a``/``b``).
* *Proof persistence* -- :class:`PacketProof` payload round-trips,
  proofs ride the portable table through serialisation and ``bind``.
* *Soundness against reality* -- for every application x model pair and
  every backend (exec, emitted module, native bursts), the observed
  final value of each proof-annotated resource stays within the proven
  interval; and the native-admission verdict matches the structural
  expectation (everything admitted except run-time loops and
  program-memory stores), so replacing the old cgen-private analysis
  lost no native coverage.
"""

from __future__ import annotations

import marshal

import pytest

from repro.analysis import absint
from repro.analysis.absint import (
    TOP,
    PacketProof,
    analyze_packet,
    const,
    join,
    make,
    of_width,
    transfer_alu,
    transfer_unary,
)
from repro.apps import build_adpcm, build_fir, build_gsm
from repro.bench import load_app_program
from repro.machine.control import PipelineControl
from repro.machine.driver import Pipeline
from repro.machine.state import ProcessorState
from repro.sim import create_simulator
from repro.simcc import ir
from repro.simcc.emit import emit_simulator_module
from repro.simcc.native import native_available
from repro.simcc.portable import PortableTable, build_portable_table

APP_MATRIX = [
    ("fir-c62x", lambda: build_fir("c62x", taps=4, samples=8)),
    ("fir-c54x", lambda: build_fir("c54x", taps=4, samples=8)),
    ("fir-tinydsp", lambda: build_fir("tinydsp", taps=4, samples=8)),
    ("adpcm-c62x", lambda: build_adpcm(samples=16)),
    ("gsm-c62x", lambda: build_gsm(target_words=1024)),
]

app_matrix = pytest.mark.parametrize(
    "builder", [entry[1] for entry in APP_MATRIX],
    ids=[entry[0] for entry in APP_MATRIX],
)


# -- the abstract domains -----------------------------------------------------


class TestAbsVal:
    def test_const(self):
        assert const(5).is_const(5)
        assert const(5).bits == 5
        assert const(-3).bits is None  # bits only for non-negative values
        assert const(-3).bounded

    def test_of_width(self):
        assert of_width(16, True) == make(-32768, 32767)
        fact = of_width(8, False)
        assert fact.within(0, 255)
        assert fact.bits == 0xFF

    def test_join(self):
        assert join(const(1), const(5)).within(1, 5)
        assert join(const(1), TOP) == TOP
        assert not join(make(0, 4), make(None, 9)).bounded

    def test_make_reduces_interval_onto_bits(self):
        # A non-negative bounded interval induces a bit mask ...
        assert make(0, 5).bits == 7
        # ... and a mask caps an unbounded upper end.
        assert make(0, None, 0xF0).hi == 0xF0

    def test_fits_int64(self):
        assert const(absint.SAFE_HI).fits_int64()
        assert not make(0, absint.SAFE_HI + 1).fits_int64()
        assert not TOP.fits_int64()


class TestTransferFunctions:
    def test_addition_endpoints(self):
        assert transfer_alu("+", make(1, 3), make(10, 20)).within(11, 23)
        assert transfer_alu("+", TOP, const(1)) == TOP

    def test_comparison_is_boolean(self):
        assert transfer_alu("==", TOP, TOP).within(0, 1)
        assert transfer_alu("&&", TOP, TOP).within(0, 1)

    def test_known_bits_beat_intervals(self):
        # Unbounded operands: the interval domain alone proves nothing,
        # the known-bits product proves [0, 255].
        high = transfer_alu("&", TOP, const(0xF0))
        low = transfer_alu("&", TOP, const(0x0F))
        packed = transfer_alu("|", high, low)
        assert packed.within(0, 255)
        assert packed.bits == 0xFF

    def test_shift_of_masked_value(self):
        masked = transfer_alu("&", TOP, const(0x0F))
        shifted = transfer_alu("<<", masked, const(4))
        assert shifted.within(0, 0xF0)
        assert shifted.bits == 0xF0

    def test_constant_shift(self):
        assert transfer_alu("<<", const(3), const(2)).is_const(12)
        assert transfer_alu(">>", const(-8), const(1)).is_const(-4)

    def test_oversized_shift_rejected(self):
        assert transfer_alu("<<", const(1), make(0, 65)) == TOP

    def test_division_bounded_by_dividend(self):
        assert transfer_alu("/", make(-10, 10), TOP).within(-10, 10)
        assert transfer_alu("%", TOP, const(7)) == TOP  # unbounded dividend

    def test_unary(self):
        assert transfer_unary("-", make(2, 5)).within(-5, -2)
        assert transfer_unary("~", make(0, 3)).within(-4, -1)
        assert transfer_unary("!", TOP).within(0, 1)


# -- packet analysis ----------------------------------------------------------


def _packet(testmodel, *ops):
    func = ir.IRFunction(name="t", ops=tuple(ops))
    return analyze_packet([[func]], testmodel, "pmem")


class TestAnalyzePacket:
    def test_clean_packet_is_native_with_cells(self, testmodel):
        proof = _packet(
            testmodel,
            ir.WriteReg("ACC", ir.Const(5), width=16, signed=True),
            ir.WriteElem("dmem", ir.Const(3), ir.ReadReg("ACC"),
                         width=32, signed=True),
        )
        assert proof.native
        assert proof.reason == ""
        assert proof.writes == {"ACC", "dmem"}
        assert proof.elem_stores == {"dmem"}
        assert proof.reads == {"ACC"}
        assert proof.cells["ACC"] == (5, 5)
        lo, hi = proof.cells["dmem"]
        assert lo >= -32768 and hi <= 32767  # ACC's declared range

    def test_program_memory_store_rejected(self, testmodel):
        proof = _packet(
            testmodel,
            ir.WriteElem("pmem", ir.Const(0), ir.Const(1),
                         width=16, signed=False),
        )
        assert not proof.native
        assert "program memory" in proof.reason
        assert "pmem" in proof.elem_stores

    def test_loop_rejected_but_summarised(self, testmodel):
        proof = _packet(
            testmodel,
            ir.Loop(ir.ReadReg("ACC"),
                    (ir.WriteElem("dmem", ir.Const(0),
                                  ir.ReadElem("R", ir.Const(1)),
                                  width=32, signed=True),)),
        )
        assert not proof.native
        assert proof.has_loop
        assert "loop" in proof.reason
        # The widened body still contributes read/write facts.
        assert "dmem" in proof.elem_stores
        assert "R" in proof.reads

    def test_provable_traps_recorded(self, testmodel):
        proof = _packet(
            testmodel,
            ir.Eval(ir.Alu("/", ir.ReadReg("ACC"), ir.Const(0))),
            ir.WriteElem("dmem", ir.Const(99), ir.Const(1),
                         width=32, signed=True),
        )
        assert len(proof.traps) == 2
        assert any("zero" in trap for trap in proof.traps)
        assert any("outside" in trap for trap in proof.traps)

    def test_canonical_store_is_raw(self, testmodel):
        write = ir.WriteReg("ACC", ir.Const(5), width=16, signed=True)
        proof = _packet(testmodel, write)
        assert id(write) in proof.raw_stores

    def test_wrapping_store_keeps_its_mask(self, testmodel):
        write = ir.WriteReg(
            "ACC", ir.Alu("*", ir.ReadReg("ACC"), ir.ReadReg("ACC")),
            width=16, signed=True,
        )
        proof = _packet(testmodel, write)
        assert id(write) not in proof.raw_stores
        assert proof.cells["ACC"] == (-32768, 32767)


class TestProofPayload:
    def _proof(self, testmodel):
        return _packet(
            testmodel,
            ir.WriteReg("ACC", ir.Const(5), width=16, signed=True),
            ir.Eval(ir.Alu("/", ir.Const(1), ir.Const(0))),
        )

    def test_round_trip(self, testmodel):
        proof = self._proof(testmodel)
        clone = PacketProof.from_payload(proof.to_payload())
        # raw_stores is render-time only (compare=False): everything
        # else must survive.
        assert clone == proof
        assert clone.raw_stores == frozenset()

    def test_marshal_compatible(self, testmodel):
        payload = self._proof(testmodel).to_payload()
        assert marshal.loads(marshal.dumps(payload)) == payload

    def test_proofs_payload_round_trip(self, testmodel):
        proofs = {0: self._proof(testmodel)}
        clone = absint.proofs_from_payload(absint.proofs_to_payload(proofs))
        assert clone == proofs
        assert absint.proofs_from_payload(None) is None


# -- proofs through the portable table ---------------------------------------


class TestTableProofs:
    @pytest.fixture(scope="class")
    def portable(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 21
        add r2, r1, r1
        st r2, 7
        halt
        """)
        return build_portable_table(testmodel, program,
                                    level="instantiated")

    def test_portable_table_carries_proofs(self, portable):
        assert portable.proofs
        assert set(portable.proofs) == set(portable.table_spec)
        assert all(isinstance(proof, PacketProof)
                   for proof in portable.proofs.values())

    def test_proofs_survive_payload(self, portable):
        clone = PortableTable.from_payload(portable.to_payload())
        assert clone.proofs == portable.proofs

    def test_bound_table_exposes_proofs(self, testmodel, portable):
        state = ProcessorState(testmodel)
        control = PipelineControl()
        table = portable.bind(state, control)
        assert table.proofs == portable.proofs
        assert absint.table_proofs(table, testmodel) is table.proofs

    def test_store_resources_exclude_program_memory(self, testmodel,
                                                    portable):
        state = ProcessorState(testmodel)
        table = portable.bind(state, PipelineControl())
        targets = absint.table_store_resources(table, testmodel)
        assert "dmem" in targets  # the ``st`` instruction
        assert "pmem" not in targets  # guard elision is licensed

    def test_proofless_table_answers_none(self, testmodel):
        class Bare:
            proofs = None
            ir_by_stage = None

        assert absint.table_store_resources(Bare(), testmodel) is None


# -- soundness over the application matrix ------------------------------------


def _expect_native(funcs_by_stage, pmem_name):
    """Structural admission expectation: only run-time loops and
    program-memory stores keep a packet off the native path."""
    for stage_funcs in funcs_by_stage:
        for func in stage_funcs:
            for op in ir.walk_ops(func.ops):
                if isinstance(op, ir.Loop):
                    return False
                if isinstance(op, ir.WriteElem) \
                        and op.resource == pmem_name:
                    return False
    return True


def _joined_cells(proofs):
    """Program-level interval per resource: the join over all packets."""
    joined = {}
    for proof in proofs.values():
        for name, (lo, hi) in proof.cells.items():
            if name in joined:
                seen_lo, seen_hi = joined[name]
                lo = None if lo is None or seen_lo is None \
                    else min(lo, seen_lo)
                hi = None if hi is None or seen_hi is None \
                    else max(hi, seen_hi)
            joined[name] = (lo, hi)
    return joined


def _resource_values(state, model, name):
    reg = model.registers.get(name)
    value = getattr(state, name)
    if reg is not None and not reg.is_file:
        return [value]
    return list(value)


def _assert_within_proofs(model, joined, initial, state, backend):
    for name, (lo, hi) in joined.items():
        if name == model.pc_name:
            continue  # the fetch driver advances the PC outside the IR
        final = _resource_values(state, model, name)
        for index, (first, now) in enumerate(zip(initial[name], final)):
            if now == first:
                continue  # never actually stored to at run time
            assert lo is None or now >= lo, (
                "%s: %s[%d] = %d below proven lo %d"
                % (backend, name, index, now, lo)
            )
            assert hi is None or now <= hi, (
                "%s: %s[%d] = %d above proven hi %d"
                % (backend, name, index, now, hi)
            )


@app_matrix
def test_native_admission_matches_structure(builder):
    """No native-coverage regression vs the retired cgen analysis: every
    packet is admitted unless it structurally cannot be (loop or
    program-memory store)."""
    model, program = load_app_program(builder())
    portable = build_portable_table(model, program, level="instantiated")
    pmem_name = model.config.program_memory
    by_name = {func.name: func for func in portable.functions}
    for pc, (per_stage, _words, _insns) in portable.table_spec.items():
        funcs = [[by_name[name] for name in names] for names in per_stage]
        expected = _expect_native(funcs, pmem_name)
        proof = portable.proofs[pc]
        assert proof.native == expected, (
            "0x%x: native=%s expected=%s (%s)"
            % (pc, proof.native, expected, proof.reason)
        )


@app_matrix
def test_concrete_runs_stay_within_proven_intervals(builder):
    """For every backend, observed run-time values of proof-annotated
    resources stay inside the proven intervals."""
    app = builder()
    model, program = load_app_program(app)
    portable = build_portable_table(model, program, level="instantiated")
    joined = _joined_cells(portable.proofs)
    assert joined  # the apps all store results

    # Backend 1: the in-process exec backend (compiled simulator).
    sim = create_simulator(model, "compiled")
    sim.load_program(program)
    initial = {name: _resource_values(sim.state, model, name)
               for name in joined}
    sim.run()
    app.verify(sim.state)
    _assert_within_proofs(model, joined, initial, sim.state, "python")

    # Backend 2: the emitted standalone module.
    source = emit_simulator_module(model, program, level="instantiated")
    namespace = {"__name__": "simir_emitted"}
    exec(compile(source, "<simir-emitted>", "exec"), namespace)
    state = ProcessorState(model)
    control = PipelineControl()
    namespace["PROGRAM"].load_into(state)
    initial = {name: _resource_values(state, model, name)
               for name in joined}
    frontend = namespace["make_frontend"](state, control)
    Pipeline(model, state, control, frontend).run(10_000_000)
    _assert_within_proofs(model, joined, initial, state, "module")

    # Backend 3: native bursts (when the host has a toolchain).
    if native_available():
        native = create_simulator(model, "unfolded_static",
                                  backend="native")
        native.load_program(program)
        initial = {name: _resource_values(native.state, model, name)
                   for name in joined}
        native.run()
        _assert_within_proofs(model, joined, initial, native.state,
                              "native")
