"""Tests for the simulation-compile-time program analyzer.

Covers the three passes (effects, CFG recovery, hazards), the shared
report format, the verdict gating of static scheduling, and the
acceptance properties: the injected defect classes are detected, the
example applications analyse clean, and every statically composed
pipeline window is proven hazard-free.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    CONFLICTING,
    HAZARD_FREE,
    UNKNOWN,
    analyze_program,
    schedule_safety,
)
from repro.analysis import effects as effects_mod
from repro.analysis.cfg import build_cfg
from repro.analysis.effects import EffectsAnalyzer
from repro.analysis.report import Report
from repro.apps import build_adpcm, build_fir, build_gsm
from repro.sim import create_simulator
from repro.support.errors import SimulationError


def _analyze(model, tools, text):
    return analyze_program(model, tools.assembler.assemble_text(text))


def _checks(result):
    return {f.check for f in result.report}


# -- report ------------------------------------------------------------------


class TestReport:
    def test_deduplicates_on_insert(self):
        report = Report()
        report.add("warning", 4, "hazard.raw", "same thing")
        report.add("warning", 4, "hazard.raw", "same thing")
        assert len(report) == 1

    def test_sorted_by_address_then_message(self):
        report = Report()
        report.add("note", 8, "cfg.dead-write", "zzz")
        report.add("error", 8, "cfg.packet-middle", "aaa")
        report.add("warning", 2, "hazard.waw", "mmm")
        report.add("warning", None, "model.diagnostic", "global")
        ordered = report.sorted_findings()
        assert [f.address for f in ordered] == [None, 2, 8, 8]
        assert [f.message for f in ordered][2:] == ["aaa", "zzz"]

    def test_exit_codes(self):
        report = Report()
        assert report.exit_code() == 0
        report.add("note", 0, "x", "n")
        assert report.exit_code(werror=True) == 0
        report.add("warning", 0, "x", "w")
        assert report.exit_code() == 0
        assert report.exit_code(werror=True) == 1
        report.add("error", 0, "x", "e")
        assert report.exit_code() == 1

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Report().add("fatal", 0, "x", "m")


# -- effects -----------------------------------------------------------------


class TestEffects:
    def _effects(self, c62x, c62x_tools, text):
        word = c62x_tools.assembler.assemble_text(text).segments_in(
            c62x.config.program_memory
        )[0].words[0]
        node = c62x_tools.decoder.decode(word)
        return EffectsAnalyzer(c62x).effects_of(node)

    def test_add_stage_resolved(self, c62x, c62x_tools):
        fx = self._effects(c62x, c62x_tools, "add a3, a1, a2")
        e1 = c62x.pipeline.stage_index("E1")
        assert ("A", "3") in fx.stages[e1].writes
        assert {("A", "1"), ("A", "2")} <= fx.stages[e1].reads
        # No other stage touches storage.
        for index, stage in enumerate(fx.stages):
            if index != e1:
                assert not stage.writes
        assert not fx.truncated and not fx.has_control

    def test_load_spans_pipeline(self, c62x, c62x_tools):
        fx = self._effects(c62x, c62x_tools, "ldw a5, a4, 0")
        e1 = c62x.pipeline.stage_index("E1")
        e5 = c62x.pipeline.stage_index("E5")
        assert ("lsq", "0") in fx.stages[e1].writes
        assert ("A", "4") in fx.stages[e1].reads
        # The destination write (through the REFERENCE) lands in E5.
        assert ("A", "5") in fx.stages[e5].writes
        assert ("dmem", "*") in fx.stages[e5].reads

    def test_store_wildcard(self, c62x, c62x_tools):
        fx = self._effects(c62x, c62x_tools, "stw a1, a4, 0")
        assert ("dmem", "*") in fx.writes

    def test_branch_pc_writes(self, c62x, c62x_tools):
        fx = self._effects(c62x, c62x_tools, "b 12")
        dc = c62x.pipeline.stage_index("DC")
        [(stage, write)] = fx.pc_write_stages()
        assert stage == dc
        assert write.target == 12
        assert not write.conditional

    def test_conditional_branch(self, c62x, c62x_tools):
        fx = self._effects(c62x, c62x_tools, "bnz a1, 12")
        [(_, write)] = fx.pc_write_stages()
        assert write.conditional

    def test_depth_guard_truncates_conservatively(
        self, c62x, c62x_tools, monkeypatch
    ):
        # The guard fires on entry (the old walker let the last level
        # recurse one past the limit); at -1 even the root walk refuses.
        monkeypatch.setattr(effects_mod, "MAX_CALL_DEPTH", -1)
        fx = self._effects(c62x, c62x_tools, "add a3, a1, a2")
        assert fx.truncated
        assert not fx.writes

    def test_lint_written_cells_delegates(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.tools.lint import written_cells

        word = c62x_tools.assembler.assemble_text(
            "ldw a5, a4, 0"
        ).segments_in(c62x.config.program_memory)[0].words[0]
        node = c62x_tools.decoder.decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert cells == EffectsAnalyzer(c62x).written_cells(node)
        assert ("A", "5") in cells

    def test_stale_identity_does_not_alias_variants(self, c62x, c62x_tools):
        # One analyzer over a stream of transient nodes: resolution must
        # track each node, not a recycled id from a collected one.
        analyzer = EffectsAnalyzer(c62x)
        words = c62x_tools.assembler.assemble_text(
            "ldw a5, a4, 0\nldw b5, b4, 0"
        ).segments_in(c62x.config.program_memory)[0].words
        for word, cell in zip(words, (("A", "5"), ("B", "5"))):
            fx = analyzer.effects_of(c62x_tools.decoder.decode(word))
            assert cell in fx.writes


# -- CFG recovery ------------------------------------------------------------


class TestCFG:
    def test_packet_boundaries(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text(
            "mvk a1, 1\n || mvk a2, 2\nhalt"
        )
        cfg = build_cfg(c62x, program)
        assert cfg.order[0] == 0
        assert cfg.packets[0].extent == 2
        assert len(cfg.packets[0].members) == 2
        assert cfg.packets[2].extent == 1

    def test_branch_recovered(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("b 2\nnop\nhalt")
        cfg = build_cfg(c62x, program)
        [branch] = cfg.packets[0].branches
        assert branch.targets == (2,)
        assert branch.stage == c62x.pipeline.stage_index("DC")
        assert cfg.delay_cycles(branch) == branch.stage

    def test_branch_into_packet_middle(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, """
            .equ skip, 7
            b skip
            nop
            nop
            nop
            nop
            nop
            add a1, a1, a2
         || add a2, a2, a3
            halt
        """)
        [finding] = result.report.errors
        assert finding.check == "cfg.packet-middle"
        assert "0x7" in finding.message and "0x6" in finding.message

    def test_branch_out_of_segment(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, "b 500\nhalt")
        [finding] = result.report.errors
        assert finding.check == "cfg.out-of-segment"

    def test_branch_into_delay_slots(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, """
            b 7
            nop
            nop
            nop
            nop
            nop
            b 3
            nop
            nop
            nop
            nop
            nop
            halt
        """)
        warnings = [f for f in result.report.warnings
                    if f.check == "cfg.delay-slot"]
        # Both branches target the other's delay window (0x7 sits in
        # the slots of the branch at 0x6, 0x3 in those of 0x0).
        assert len(warnings) == 2
        assert any(
            "0x3" in f.message and "0x0" in f.message for f in warnings
        )

    def test_unreachable_after_flush_branch(self, tinydsp, tinydsp_tools):
        result = _analyze(tinydsp, tinydsp_tools, """
            br 3
            ldi r1, 1
            ldi r2, 2
            halt
        """)
        notes = [f for f in result.report.notes
                 if f.check == "cfg.unreachable"]
        assert {f.address for f in notes} == {1, 2}

    def test_dead_write_noted(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, "mvk a1, 1\nmvk a1, 2\nhalt")
        [finding] = [f for f in result.report.notes
                     if f.check == "cfg.dead-write"]
        assert finding.address == 0
        assert "A[1]" in finding.message

    def test_read_retires_pending_write(self, c62x, c62x_tools):
        # Same shape, but the value is consumed (five delay slots after
        # the writing packet, so no hazard either): nothing to report.
        result = _analyze(c62x, c62x_tools, """
            mvk a1, 1
            add a2, a1, a1
            mvk a1, 2
            halt
        """)
        assert not [f for f in result.report.notes
                    if f.check == "cfg.dead-write"]


# -- hazards -----------------------------------------------------------------


class TestHazards:
    def test_load_use_raw(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, """
            mvk a4, 100
            ldw a5, a4, 0
            add a6, a5, a5
            halt
        """)
        assert "hazard.raw" in _checks(result)
        assert result.safety[1] == CONFLICTING
        assert result.safety[2] == CONFLICTING
        assert result.safety[0] == HAZARD_FREE

    def test_load_respects_delay_slots(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, """
            mvk a4, 100
            ldw a5, a4, 0
            nop
            nop
            nop
            add a6, a5, a5
            halt
        """)
        assert not result.report.warnings
        assert set(result.safety.values()) == {HAZARD_FREE}

    def test_waw_across_cycles(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, """
            ldw a5, a4, 0
            nop
            mvk a5, 7
            halt
        """)
        assert "hazard.waw" in _checks(result)
        assert result.safety[0] == CONFLICTING

    def test_single_stage_model_hazard_free(self, tinydsp, tinydsp_tools):
        # Every tinydsp operation executes in EX, so no cross-cycle
        # ordering violation is expressible.
        result = _analyze(tinydsp, tinydsp_tools, """
            ldi r1, 3
            add r2, r2, r1
            mul r3, r2, r2
            st r3, 7
            halt
        """)
        assert not result.report.warnings and not result.report.errors
        assert set(result.safety.values()) == {HAZARD_FREE}

    def test_verdicts_cover_every_packet(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text(
            "mvk a1, 1\n || mvk a2, 2\nnop\nhalt"
        )
        cfg = build_cfg(c62x, program)
        verdicts = schedule_safety(c62x, program)
        assert set(verdicts) == set(cfg.order)

    def test_undecodable_word_is_unknown(self, c62x, c62x_tools):
        result = _analyze(c62x, c62x_tools, "nop\n.word 0xffffffff\nhalt")
        assert result.safety[1] == UNKNOWN


# -- scheduler gating --------------------------------------------------------


RAW_PROGRAM = """
    mvk a4, 100
    ldw a5, a4, 0
    add a6, a5, a5
    halt
"""

CLEAN_PROGRAM = """
    mvk a4, 100
    ldw a5, a4, 0
    nop
    nop
    nop
    add a6, a5, a5
    halt
"""


class TestScheduleGating:
    def test_table_carries_verdicts(self, c62x, c62x_tools):
        from repro.machine.control import PipelineControl
        from repro.machine.state import ProcessorState

        program = c62x_tools.assembler.assemble_text(RAW_PROGRAM)
        state = ProcessorState(c62x)
        control = PipelineControl()
        table = c62x_tools.simulation_compiler.compile(
            program, state, control
        )
        assert table.schedule_safety is not None
        assert table.schedule_safety[1] == CONFLICTING
        assert table.schedule_safety[0] == HAZARD_FREE

    def test_conflicting_window_falls_back_dynamic(self, c62x, c62x_tools):
        reference = create_simulator(c62x, "interpretive")
        program = c62x_tools.assembler.assemble_text(RAW_PROGRAM)
        reference.load_program(program)
        reference.run()
        sim = create_simulator(c62x, "static")
        sim.load_program(program)
        sim.run()
        assert sim.state.read_register("A", 6) == \
            reference.state.read_register("A", 6)
        # The conflicting pcs were never statically composed.
        for node in sim.engine._interned.values():
            if node.column is not None:
                assert all(pc not in (1, 2) for pc in node.pcs)

    def test_verify_schedule_raises_on_conflict(self, c62x, c62x_tools):
        sim = create_simulator(c62x, "static", verify_schedule=True)
        program = c62x_tools.assembler.assemble_text(RAW_PROGRAM)
        with pytest.raises(SimulationError, match="hazard"):
            sim.load_program(program)
            sim.run()

    def test_verify_schedule_passes_clean_program(self, c62x, c62x_tools):
        sim = create_simulator(c62x, "static", verify_schedule=True)
        sim.load_program(c62x_tools.assembler.assemble_text(CLEAN_PROGRAM))
        sim.run()
        assert sim.state.read_register("A", 6) == \
            2 * sim.state.read_memory("dmem", 100)

    def test_legacy_table_without_verdicts_composes(self, c62x, c62x_tools):
        from repro.machine.control import PipelineControl
        from repro.machine.state import ProcessorState
        from repro.sim.static import StaticPipeline

        # Long enough that full pipeline windows exist with the halt
        # (a control instruction) not yet in flight.
        program = c62x_tools.assembler.assemble_text(
            "\n".join("add a1, a1, a1" for _ in range(24)) + "\nhalt"
        )
        state = ProcessorState(c62x)
        control = PipelineControl()
        program.load_into(state)
        table = c62x_tools.simulation_compiler.compile(
            program, state, control
        )
        table.schedule_safety = None  # hand-built/legacy table
        pipeline = StaticPipeline(c62x, state, control, table)
        pipeline.run()
        assert any(
            node.column for node in pipeline._interned.values()
        )


# -- acceptance: the example applications ------------------------------------


APPS = (("fir", build_fir), ("adpcm", build_adpcm), ("gsm", build_gsm))


class TestApplicationsAnalyzeClean:
    @pytest.mark.parametrize("name,builder", APPS, ids=[a[0] for a in APPS])
    def test_no_findings_all_hazard_free(self, c62x, c62x_tools, name,
                                         builder):
        program = builder().assemble(c62x_tools)
        result = analyze_program(c62x, program)
        assert not result.report.errors
        assert not result.report.warnings
        counts = result.verdict_counts()
        assert counts[CONFLICTING] == 0 and counts[UNKNOWN] == 0
        assert counts[HAZARD_FREE] == len(result.cfg.order)


class TestStaticWindowsProperty:
    """Every statically composed window is proven hazard-free."""

    @pytest.mark.parametrize("kind", ["static", "unfolded_static"])
    @pytest.mark.parametrize("name,builder", APPS[:2],
                             ids=[a[0] for a in APPS[:2]])
    def test_composed_windows_are_proven(self, c62x, c62x_tools, kind,
                                         name, builder):
        program = builder().assemble(c62x_tools)
        sim = create_simulator(c62x, kind)
        sim.load_program(program)
        sim.run()
        safety = sim.table.schedule_safety
        assert safety is not None
        composed = 0
        for node in sim.engine._interned.values():
            if node.column is None or node.empty:
                continue
            composed += 1
            for pc in node.pcs:
                assert pc is None or safety[pc] == HAZARD_FREE
        # Static composition actually happened (the gate did not just
        # push everything onto the dynamic path).
        assert composed > 0

    def test_gsm_runs_fully_static(self, c62x, c62x_tools):
        program = build_gsm().assemble(c62x_tools)
        sim = create_simulator(c62x, "static", verify_schedule=True)
        sim.load_program(program)
        sim.run()  # raises if any window is not proven hazard-free
        safety = sim.table.schedule_safety
        for node in sim.engine._interned.values():
            if node.column is not None and not node.empty:
                assert all(
                    pc is None or safety[pc] == HAZARD_FREE
                    for pc in node.pcs
                )
