"""Tests for the high-level package API."""

import pytest

from repro import (
    build_toolset,
    compile_lisa_source,
    list_models,
    load_model,
)
from repro.api import Toolset
from repro.support.errors import ReproError
from tests.conftest import TESTMODEL_SOURCE


class TestModelRegistry:
    def test_list_models(self):
        assert list_models() == ["c54x", "c62x", "tinydsp"]

    def test_load_model_cached(self):
        assert load_model("tinydsp") is load_model("tinydsp")

    def test_load_model_uncached(self):
        from repro.models import load_model as raw_load

        fresh = raw_load("tinydsp", use_cache=False)
        assert fresh is not load_model("tinydsp")
        assert fresh.name == "tinydsp"

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            load_model("z80")

    def test_model_source_path_exists(self):
        import os

        from repro.models import model_source_path

        assert os.path.exists(model_source_path("c62x"))


class TestCompileHelpers:
    def test_compile_source(self):
        model = compile_lisa_source(TESTMODEL_SOURCE, "t.lisa")
        assert model.name == "testmodel"

    def test_compile_file(self, tmp_path):
        from repro import compile_lisa_file

        path = tmp_path / "m.lisa"
        path.write_text(TESTMODEL_SOURCE)
        model = compile_lisa_file(path)
        assert model.source_filename == str(path)


class TestToolset:
    def test_components_are_cached(self, testmodel):
        tools = build_toolset(testmodel)
        assert tools.assembler is tools.assembler
        assert tools.decoder is tools.decoder
        assert tools.encoder is tools.encoder
        assert tools.disassembler is tools.disassembler
        assert tools.simulation_compiler is tools.simulation_compiler

    def test_new_simulator_kinds(self, testmodel):
        tools = build_toolset(testmodel)
        assert tools.new_simulator("interpretive").kind == "interpretive"
        assert tools.new_simulator().kind == "compiled"

    def test_build_toolset_requires_model(self):
        with pytest.raises(ReproError):
            build_toolset(None)

    def test_quickstart_from_docstring(self):
        """The package docstring example must actually work."""
        model = load_model("tinydsp")
        tools = build_toolset(model)
        program = tools.assembler.assemble_text(
            """
            start:  ldi r1, 5
                    ldi r2, 7
                    add r3, r1, r2
                    halt
            """
        )
        sim = tools.new_simulator("compiled")
        sim.load_program(program)
        sim.run()
        assert sim.state.read_register("R", 3) == 12
