"""Tests for the benchmark applications and golden models."""

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm, build_synthetic
from repro.apps.base import Application, lcg, lcg_samples
from repro.apps.golden import (
    INDEX_TABLE,
    STEP_TABLE,
    adpcm_decode_reference,
    adpcm_encode_reference,
    autocorrelation_reference,
    fir_reference,
    hann_window_reference,
    ltp_search_reference,
    sat16,
    wrap32,
)
from repro.bench import run_and_verify
from repro.support.errors import ReproError


class TestGoldenPrimitives:
    def test_wrap32(self):
        assert wrap32(0x7FFFFFFF) == 0x7FFFFFFF
        assert wrap32(0x80000000) == -0x80000000
        assert wrap32(-0x80000001) == 0x7FFFFFFF

    def test_sat16(self):
        assert sat16(40000) == 32767
        assert sat16(-40000) == -32768
        assert sat16(5) == 5

    def test_fir_by_hand(self):
        # y[n] = sum h[k] x[n-k]: x=[1,2], h=[3,4] -> y=[3, 10]
        assert fir_reference([1, 2], [3, 4]) == [3, 10]

    def test_fir_wraps(self):
        big = 0x7FFFFFFF
        result = fir_reference([2], [big])
        assert result == [wrap32(2 * big)]

    def test_autocorrelation_by_hand(self):
        acf = autocorrelation_reference([1, 2, 3], 2)
        assert acf == [1 + 4 + 9, 1 * 2 + 2 * 3, 1 * 3]

    def test_ltp_prefers_smallest_lag_on_tie(self):
        signal = [0] * 10 + [1, 1]
        lag, score = ltp_search_reference(signal, 10, 2, 1, 5)
        assert lag == 1 or score > 0  # deterministic tie handling

    def test_windowing(self):
        assert hann_window_reference([32768], [16384]) == [
            (32768 * 16384) >> 15
        ]


class TestGoldenAdpcm:
    def test_tables_shapes(self):
        assert len(STEP_TABLE) == 89
        assert len(INDEX_TABLE) == 16
        assert STEP_TABLE[0] == 7
        assert STEP_TABLE[-1] == 32767

    def test_codes_are_four_bit(self):
        codes, _ = adpcm_encode_reference(lcg_samples(3, 200, 20000))
        assert all(0 <= code <= 15 for code in codes)

    def test_reconstruction_in_16_bit_range(self):
        _, recon = adpcm_encode_reference(lcg_samples(4, 200, 30000))
        assert all(-32768 <= value <= 32767 for value in recon)

    def test_decoder_mirrors_encoder(self):
        samples = lcg_samples(5, 100, 10000)
        codes, recon = adpcm_encode_reference(samples)
        assert adpcm_decode_reference(codes) == recon

    def test_silence_encodes_quietly(self):
        codes, recon = adpcm_encode_reference([0] * 16)
        assert all(value in (0, 8) for value in codes)

    def test_tracks_slow_ramp(self):
        samples = list(range(0, 1600, 100))
        _, recon = adpcm_encode_reference(samples)
        # The predictor should end near the final sample value.
        assert abs(recon[-1] - samples[-1]) < 400


class TestDeterminism:
    def test_lcg_is_deterministic(self):
        a = [lcg(42)() for _ in range(5)]
        b = [lcg(42)() for _ in range(5)]
        assert a == b

    def test_lcg_samples_bounded(self):
        values = lcg_samples(7, 1000, 123)
        assert all(-123 <= v <= 123 for v in values)

    def test_apps_are_reproducible(self):
        one = build_fir("c62x", taps=4, samples=8, seed=9)
        two = build_fir("c62x", taps=4, samples=8, seed=9)
        assert one.source == two.source
        assert one.expected == two.expected

    def test_seed_changes_program(self):
        one = build_synthetic("c62x", 128, 0.1, 4, seed=1)
        two = build_synthetic("c62x", 128, 0.1, 4, seed=2)
        assert one.source != two.source


class TestApplicationContainer:
    def test_expect_and_verify(self, testmodel):
        from repro.machine.state import ProcessorState

        app = Application(name="x", model_name="testmodel", source="")
        app.expect("dmem", 2, [5, 6])
        state = ProcessorState(testmodel)
        state.dmem[2] = 5
        state.dmem[3] = 6
        assert app.verify(state)

    def test_verify_reports_mismatches(self, testmodel):
        from repro.machine.state import ProcessorState

        app = Application(name="x", model_name="testmodel", source="")
        app.expect("dmem", 0, [1])
        state = ProcessorState(testmodel)
        with pytest.raises(ReproError) as exc_info:
            app.verify(state)
        assert "dmem[0]" in str(exc_info.value)


class TestFirApplications:
    @pytest.mark.parametrize("model_name", ["tinydsp", "c54x", "c62x"])
    def test_fir_verifies_on_compiled(self, model_name):
        app = build_fir(model_name, taps=4, samples=12)
        run_and_verify(app, "compiled")

    def test_fir_layout_overflow_rejected(self):
        with pytest.raises(ReproError):
            build_fir("c54x", taps=4, samples=200)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            build_fir("pdp11")


class TestAdpcmApplication:
    def test_verifies_on_compiled(self):
        app = build_adpcm(samples=24)
        simulator = run_and_verify(app, "compiled")
        # Encoder and decoder both ran.
        assert simulator.state.dmem[6144] != 0 or \
            simulator.state.dmem[6145] != 0

    def test_only_c62x_supported(self):
        with pytest.raises(ReproError):
            build_adpcm(model_name="tinydsp")


class TestGsmApplication:
    def test_verifies_on_compiled(self):
        app = build_gsm(target_words=700)
        run_and_verify(app, "compiled")

    def test_target_size_respected(self, c62x_tools):
        app = build_gsm(target_words=1500)
        program = app.assemble(c62x_tools)
        words = program.word_count("pmem")
        assert 1400 <= words <= 1500

    def test_only_c62x_supported(self):
        with pytest.raises(ReproError):
            build_gsm(model_name="c54x")


class TestSyntheticApplication:
    @pytest.mark.parametrize("model_name,density", [
        ("tinydsp", 0.0), ("tinydsp", 0.3), ("c62x", 0.0), ("c62x", 0.2),
    ])
    def test_checksum_verifies(self, model_name, density):
        app = build_synthetic(model_name, target_words=128,
                              branch_density=density, loop_iterations=3)
        run_and_verify(app, "compiled")

    def test_density_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            build_synthetic("c62x", 100, branch_density=0.9)

    def test_unsupported_model_rejected(self):
        with pytest.raises(ReproError):
            build_synthetic("c54x", 100)
