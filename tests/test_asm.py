"""Tests for the retargetable assembler."""

import pytest

from repro.support.errors import AssemblerError


def words_of(program, memory="pmem"):
    (segment,) = program.segments_in(memory)
    return segment.words


class TestBasics:
    def test_single_instruction(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("halt")
        assert words_of(program) == [0b0_0101_00000000000]

    def test_operands_and_registers(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("ldi r3, 17")
        assert words_of(program) == [0b0_0010_011_00010001]

    def test_case_matters_for_mnemonics(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("HALT")

    def test_unknown_mnemonic_rejected_with_line(self, testmodel_tools):
        with pytest.raises(AssemblerError) as exc_info:
            testmodel_tools.assembler.assemble_text("nop\nfrob r1\n")
        assert "line 2" in str(exc_info.value)

    def test_comments_and_blank_lines(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
; full-line comment
        nop      ; trailing comment
        // another style
        halt     # shell style
""")
        assert len(words_of(program)) == 2

    def test_hex_and_binary_operands(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(
            "ldi r1, 0x10\nldi r2, 0b101\n"
        )
        words = words_of(program)
        assert words[0] & 0xFF == 0x10
        assert words[1] & 0xFF == 0b101

    def test_negative_immediates_encode_twos_complement(self,
                                                        testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("ldi r0, -1")
        assert words_of(program)[0] & 0xFF == 0xFF

    def test_negative_out_of_range_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("ldi r0, -129")

    def test_positive_out_of_range_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("ldi r0, 256")


class TestLabelsAndSymbols:
    def test_label_resolves_forward_and_backward(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
start:  brnz r1, fwd
        nop
fwd:    brnz r2, start
""")
        words = words_of(program)
        assert words[0] & 0xFF == 2  # fwd
        assert words[2] & 0xFF == 0  # start

    def test_symbols_recorded(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(
            "a: nop\nb: halt\n"
        )
        assert program.symbols == {"a": 0, "b": 1}

    def test_undefined_symbol_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("brnz r0, nowhere")

    def test_duplicate_label_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("x: nop\nx: nop\n")

    def test_symbol_arithmetic(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        .equ BASE, 10
        ldi r1, BASE + 5
        ldi r2, BASE - 3
""")
        words = words_of(program)
        assert words[0] & 0xFF == 15
        assert words[1] & 0xFF == 7


class TestDirectives:
    def test_org_moves_location(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        nop
        .org 0x10
        halt
""")
        segments = program.segments_in("pmem")
        assert [(s.base, len(s.words)) for s in segments] == [(0, 1), (16, 1)]

    def test_entry_symbol(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        .entry main
        nop
main:   halt
""")
        assert program.entry == 1

    def test_entry_defaults_to_zero(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("nop")
        assert program.entry == 0

    def test_section_and_word(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        .section dmem
        .org 4
vals:   .word 1, -2, 0x30
        .section pmem
        ldi r1, vals
        halt
""")
        (dseg,) = program.segments_in("dmem")
        assert dseg.base == 4
        assert dseg.words[0] == 1
        assert dseg.words[2] == 0x30
        assert words_of(program)[0] & 0xFF == 4  # label in data section

    def test_space_reserves_zeroes(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        .section dmem
        .space 3
        .word 9
""")
        (segment,) = program.segments_in("dmem")
        assert segment.words == [0, 0, 0, 9]

    def test_unknown_section_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text(".section vram")

    def test_instructions_only_in_program_memory(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text(
                ".section dmem\nnop\n"
            )

    def test_unknown_directive_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text(".wibble 3")

    def test_equ_duplicate_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text(
                ".equ A, 1\n.equ A, 2\n"
            )

    def test_double_assembly_at_same_address_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("""
        nop
        .org 0
        halt
""")


class TestNonOrthogonalGuards:
    """The paper's Section 5.1 feature, through the assembler."""

    def test_if_arm_sets_mode_bit(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(
            "add r1, r2, r3\naddl r1, r2, r3\n"
        )
        words = words_of(program)
        assert words[0] >> 15 == 0  # mode bit clear for 'add'
        assert words[1] >> 15 == 1  # mode bit set for 'addl'

    def test_guard_bound_fields_equal_syntax(self, testmodel_tools):
        # Same operand encoding either way, only the mode bit differs.
        program = testmodel_tools.assembler.assemble_text(
            "add r1, r2, r3\naddl r1, r2, r3\n"
        )
        words = words_of(program)
        assert words[0] & 0x7FFF == words[1] & 0x7FFF


class TestBacktracking:
    def test_postmodify_suffix_requires_backtracking(self, c54x_tools):
        program = c54x_tools.assembler.assemble_text(
            "lt *ar1\nlt *ar1+\nlt *ar1-\n"
        )
        words = words_of(program)
        pmods = [(w >> 6) & 0b11 for w in words]
        assert pmods == [0, 1, 2]

    def test_whole_line_must_be_consumed(self, c54x_tools):
        with pytest.raises(AssemblerError):
            c54x_tools.assembler.assemble_text("lt *ar1 banana")


class TestVliwParallel:
    def test_parallel_bar_sets_pbit_of_previous(self, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || mvk a2, 2
        mvk a3, 3
""")
        words = words_of(program)
        assert words[0] & 1 == 1  # chained to the next word
        assert words[1] & 1 == 0
        assert words[2] & 1 == 0

    def test_parallel_without_predecessor_rejected(self, c62x_tools):
        with pytest.raises(AssemblerError):
            c62x_tools.assembler.assemble_text("|| mvk a1, 1")

    def test_parallel_on_scalar_model_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text(
                "nop\n|| nop\n"
            )

    def test_parallel_bare_rejected(self, c62x_tools):
        with pytest.raises(AssemblerError):
            c62x_tools.assembler.assemble_text("mvk a1, 1\n||\n")


class TestDefaults:
    def test_unmentioned_fields_assemble_to_zero(self, testmodel_tools,
                                                 testmodel):
        # 'nop' says nothing about the root's mode bit: defaults to 0.
        program = testmodel_tools.assembler.assemble_text("nop")
        assert words_of(program) == [0]

    def test_fused_register_prefix(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("ldi r7, 1")
        assert (words_of(program)[0] >> 8) & 0b111 == 7

    def test_register_index_out_of_range_rejected(self, testmodel_tools):
        with pytest.raises(AssemblerError):
            testmodel_tools.assembler.assemble_text("ldi r9, 1")
