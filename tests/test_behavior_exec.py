"""Tests for behaviour execution: evaluator, code generator, and their
bit-for-bit agreement (the foundation of the paper's accuracy claim)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.behavior.codegen import BehaviorCodegen, canonical_write_source
from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.behavior.parser import parse_statements
from repro.behavior.runtime import idiv, imod
from repro.coding.decoder import InstructionDecoder
from repro.coding.encoder import InstructionEncoder, OperandSpec
from repro.lisa.lexer import tokenize
from repro.lisa.model import TYPES
from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.support.errors import BehaviorError


def stmts(source):
    return parse_statements([t for t in tokenize(source)
                             if t.kind != "eof"])


@pytest.fixture(scope="module")
def add_node(testmodel):
    """A decoded `add r1, r2, r3` (mode 0) instruction node."""
    spec = OperandSpec("insn", fields={"mode": 0}, children={
        "op": OperandSpec("add", children={
            "dst": OperandSpec("reg", fields={"idx": 1}),
            "src1": OperandSpec("reg", fields={"idx": 2}),
            "src2": OperandSpec("reg", fields={"idx": 3}),
        })
    })
    word = InstructionEncoder(testmodel).encode(spec)
    return InstructionDecoder(testmodel).decode(word).children["op"]


def run_evaluator(model, node, source, setup=None):
    state = ProcessorState(model)
    control = PipelineControl()
    if setup:
        setup(state)
    ctx = EvalContext(state, control, model)
    execute_behavior(stmts(source), node, ctx)
    return state, control


def run_codegen(model, node, source, setup=None):
    state = ProcessorState(model)
    control = PipelineControl()
    if setup:
        setup(state)
    codegen = BehaviorCodegen(model)
    fn = codegen.compile_function(
        "test_fn", [(node, _FakeBehavior(stmts(source)))], state, control
    )
    fn()
    return state, control


class _FakeBehavior:
    def __init__(self, statements):
        self.statements = statements


def run_both(model, node, source, setup=None):
    ev_state, ev_control = run_evaluator(model, node, source, setup)
    cg_state, cg_control = run_codegen(model, node, source, setup)
    assert ev_state.differences(cg_state) == [], (
        "evaluator and codegen disagree for %r" % source
    )
    assert ev_control.halted == cg_control.halted
    assert ev_control.stall_cycles == cg_control.stall_cycles
    return ev_state


BEHAVIOR_SNIPPETS = [
    "dst = src1 + src2;",
    "dst = src1 - src2;",
    "dst = src1 * src2;",
    "dst = src1 / src2;",
    "dst = src1 % src2;",
    "dst = src1 & src2;",
    "dst = src1 | src2;",
    "dst = src1 ^ src2;",
    "dst = src1 << 3;",
    "dst = src1 >> 2;",
    "dst = -src1;",
    "dst = ~src1;",
    "dst = !src1;",
    "dst = src1 < src2;",
    "dst = src1 >= src2;",
    "dst = src1 == src2;",
    "dst = src1 != src2;",
    "dst = src1 && src2;",
    "dst = src1 || src2;",
    "dst = src1 ? 10 : 20;",
    "dst = sat(src1 + src2, 8);",
    "dst = sext(src1 & 0xff, 8);",
    "dst = zext(src1, 4);",
    "dst = abs(src1);",
    "dst = min(src1, src2);",
    "dst = max(src1, src2);",
    "dst += src1;",
    "dst -= src2;",
    "dst <<= 1;",
    "int t = src1 * 2; dst = t + 1;",
    "IF (src1 > src2) { dst = 1; } ELSE { dst = 2; }",
    "int n = 3; WHILE (n) { dst = dst + src1; n = n - 1; }",
    "dmem[5] = src1; dst = dmem[5] * 2;",
    "ACC = src1 + 100000;",  # int16 canonicalisation on write
    "PC = 33;",
    "R[idx_helper()] = 9;" if False else "R[src2 & 0b111] = 9;",
]


class TestEvaluatorCodegenAgreement:
    @pytest.mark.parametrize("source", BEHAVIOR_SNIPPETS)
    def test_snippets_agree(self, testmodel, add_node, source):
        def setup(state):
            state.R[2] = 37
            state.R[3] = -11

        run_both(testmodel, add_node, source, setup)

    @given(a=st.integers(-2**31, 2**31 - 1), b=st.integers(-2**31, 2**31 - 1))
    def test_arith_agreement_property(self, testmodel, add_node, a, b):
        def setup(state):
            state.write_register("R", 2, a)
            state.write_register("R", 3, b)

        run_both(
            testmodel, add_node,
            "dst = src1 + src2; dmem[0] = src1 - src2;"
            " dmem[1] = (src1 ^ src2) >> 3; dmem[2] = sat(src1, 8);",
            setup,
        )

    @given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000))
    def test_division_agreement_property(self, testmodel, add_node, a, b):
        if b == 0:
            return

        def setup(state):
            state.write_register("R", 2, a)
            state.write_register("R", 3, b)

        state = run_both(
            testmodel, add_node, "dst = src1 / src2; dmem[0] = src1 % src2;",
            setup,
        )
        # C semantics: truncation toward zero; remainder sign = dividend.
        assert state.R[1] == idiv(a, b)
        assert state.dmem[0] == imod(a, b)


class TestEvaluatorSemantics:
    def test_group_lvalue_writes_through_expression(self, testmodel,
                                                    add_node):
        state, _ = run_evaluator(testmodel, add_node, "dst = 5;")
        assert state.R[1] == 5

    def test_reference_reads_ancestor_field(self, testmodel, add_node):
        state, _ = run_evaluator(testmodel, add_node, "dst = mode;")
        assert state.R[1] == 0

    def test_control_intrinsics(self, testmodel, add_node):
        _, control = run_evaluator(
            testmodel, add_node, "halt(); stall(2);"
        )
        assert control.halted
        assert control.stall_cycles == 2

    def test_assign_to_label_rejected(self, testmodel, add_node):
        with pytest.raises(BehaviorError):
            run_evaluator(testmodel, add_node, "mode = 1;")

    def test_unknown_name_rejected(self, testmodel, add_node):
        with pytest.raises(BehaviorError):
            run_evaluator(testmodel, add_node, "dst = mystery;")

    def test_register_file_without_index_rejected(self, testmodel, add_node):
        with pytest.raises(BehaviorError):
            run_evaluator(testmodel, add_node, "dst = R;")

    def test_index_of_non_resource_rejected(self, testmodel, add_node):
        with pytest.raises(BehaviorError):
            run_evaluator(testmodel, add_node, "dst = mode[0];")

    def test_memory_bounds_checked(self, testmodel, add_node):
        from repro.support.errors import SimulationError

        with pytest.raises(SimulationError):
            run_evaluator(testmodel, add_node, "dst = dmem[999];")

    def test_defines_usable_in_behavior(self, testmodel, add_node):
        state, _ = run_evaluator(testmodel, add_node, "dst = LONG + 1;")
        assert state.R[1] == 2

    def test_local_shadows_nothing_and_scopes(self, testmodel, add_node):
        state, _ = run_evaluator(
            testmodel, add_node, "int mode2 = 41; dst = mode2 + 1;"
        )
        assert state.R[1] == 42

    def test_while_loop_cap(self, testmodel, add_node, monkeypatch):
        from repro.behavior import evaluator
        from repro.support.errors import SimulationError

        monkeypatch.setattr(evaluator, "_MAX_LOOP_ITERATIONS", 1000)
        with pytest.raises(SimulationError):
            run_evaluator(testmodel, add_node, "WHILE (1) { dst = 1; }")


class TestCodegenDetails:
    def test_canonical_write_source_signed(self):
        src = canonical_write_source(TYPES["int8"], "v")
        namespace = {"v": 200}
        assert eval(src, namespace) == -56

    def test_canonical_write_source_unsigned(self):
        src = canonical_write_source(TYPES["uint8"], "v")
        assert eval(src, {"v": -1}) == 255

    def test_operand_constant_folding(self, testmodel, add_node):
        codegen = BehaviorCodegen(testmodel)
        source = codegen.function_source(
            "f", [(add_node, _FakeBehavior(stmts("dst = src1 + src2;")))]
        )
        # The selected register indices appear as literals.
        assert "s.R[2]" in source
        assert "s.R[3]" in source
        assert "s.R[1]" in source

    def test_control_intrinsic_emitted(self, testmodel, add_node):
        codegen = BehaviorCodegen(testmodel)
        source = codegen.function_source(
            "f", [(add_node, _FakeBehavior(stmts("flush(); stall(1);")))]
        )
        assert "c.request_flush()" in source
        assert "c.request_stall(1)" in source

    def test_empty_behavior_emits_pass(self, testmodel, add_node):
        codegen = BehaviorCodegen(testmodel)
        source = codegen.function_source("f", [])
        assert "pass" in source

    def test_child_call_in_expression_rejected(self, testmodel, add_node):
        codegen = BehaviorCodegen(testmodel)
        with pytest.raises(BehaviorError):
            codegen.function_source(
                "f", [(add_node, _FakeBehavior(stmts("dst = src1();")))]
            )

    def test_pure_intrinsic_statement_dropped(self, testmodel, add_node):
        codegen = BehaviorCodegen(testmodel)
        source = codegen.function_source(
            "f", [(add_node, _FakeBehavior(stmts("sext(1, 2);")))]
        )
        assert "__sext" not in source


class TestChildInvocation:
    """`child();` runs the selected sub-operation's behaviours inline."""

    SOURCE = """
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[4];
    MEMORY uint8 pmem[8];
    PIPELINE pipe = { EX };
}
CONFIG { WORDSIZE(3); ROOT(insn); EXECUTE_STAGE(EX); }
OPERATION insn {
    DECLARE { GROUP kid = { bump || double }; }
    CODING { kid 0bxx }
    BEHAVIOR { R[0] = 10; kid(); R[2] = R[0]; }
}
OPERATION bump { CODING { 0b0 } BEHAVIOR { R[0] = R[0] + 1; } }
OPERATION double { CODING { 0b1 } BEHAVIOR { R[0] = R[0] * 2; } }
"""

    @pytest.mark.parametrize("word,expected", [(0b000, 11), (0b100, 20)])
    def test_both_backends(self, word, expected):
        from repro.lisa.semantics import compile_source

        model = compile_source(self.SOURCE)
        node = InstructionDecoder(model).decode(word)
        behavior = node.variant(model).behaviors[0]

        state = ProcessorState(model)
        execute_behavior(
            behavior.statements, node,
            EvalContext(state, PipelineControl(), model),
        )
        assert state.R[2] == expected

        state2 = ProcessorState(model)
        control2 = PipelineControl()
        fn = BehaviorCodegen(model).compile_function(
            "f", [(node, behavior)], state2, control2
        )
        fn()
        assert state2.R[2] == expected
