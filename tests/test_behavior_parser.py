"""Tests for the behaviour-language parser."""

import pytest

from repro.behavior import ast
from repro.behavior.parser import parse_expression, parse_statements
from repro.lisa.lexer import tokenize
from repro.support.errors import BehaviorError


def toks(source):
    return [t for t in tokenize(source) if t.kind != "eof"]


def expr(source):
    return parse_expression(toks(source))


def stmts(source):
    return parse_statements(toks(source))


class TestExpressions:
    def test_integer_literal(self):
        node = expr("42")
        assert isinstance(node, ast.IntLit)
        assert node.value == 42

    def test_name(self):
        node = expr("foo")
        assert isinstance(node, ast.Name)
        assert node.name == "foo"

    def test_index(self):
        node = expr("R[3]")
        assert isinstance(node, ast.Index)
        assert node.base == "R"
        assert isinstance(node.index, ast.IntLit)

    def test_call(self):
        node = expr("sext(x, 8)")
        assert isinstance(node, ast.Call)
        assert node.name == "sext"
        assert len(node.args) == 2

    def test_call_no_args(self):
        node = expr("flush()")
        assert node.args == ()

    def test_precedence_mul_over_add(self):
        node = expr("a + b * c")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_shift_below_add(self):
        node = expr("a << b + c")
        assert node.op == "<<"
        assert node.right.op == "+"

    def test_precedence_comparison_below_shift(self):
        node = expr("a < b << c")
        assert node.op == "<"

    def test_precedence_logical(self):
        node = expr("a || b && c")
        assert node.op == "||"
        assert node.right.op == "&&"

    def test_bitwise_levels(self):
        node = expr("a | b ^ c & d")
        assert node.op == "|"
        assert node.right.op == "^"
        assert node.right.right.op == "&"

    def test_left_associativity(self):
        node = expr("a - b - c")
        assert node.op == "-"
        assert node.left.op == "-"

    def test_parentheses_override(self):
        node = expr("(a + b) * c")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_unary_operators(self):
        assert expr("-x").op == "-"
        assert expr("~x").op == "~"
        assert expr("!x").op == "!"
        # Unary plus is a no-op.
        assert isinstance(expr("+x"), ast.Name)

    def test_nested_unary(self):
        node = expr("--x")
        assert node.op == "-"
        assert node.operand.op == "-"

    def test_ternary(self):
        node = expr("a ? b : c")
        assert isinstance(node, ast.Ternary)

    def test_ternary_right_associative(self):
        node = expr("a ? b : c ? d : e")
        assert isinstance(node.if_false, ast.Ternary)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(BehaviorError):
            expr("a b")

    def test_empty_expression_rejected(self):
        with pytest.raises(BehaviorError):
            expr("")


class TestStatements:
    def test_simple_assignment(self):
        (node,) = stmts("x = 1;")
        assert isinstance(node, ast.Assign)
        assert node.op == "="

    def test_compound_assignments(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="):
            (node,) = stmts("x %s 2;" % op)
            assert node.op == op

    def test_indexed_assignment(self):
        (node,) = stmts("mem[a + 1] = v;")
        assert isinstance(node.target, ast.Index)

    def test_assignment_target_must_be_lvalue(self):
        with pytest.raises(BehaviorError):
            stmts("(a + b) = 1;")

    def test_expression_statement(self):
        (node,) = stmts("flush();")
        assert isinstance(node, ast.ExprStmt)

    def test_local_declaration(self):
        (node,) = stmts("int x = 5;")
        assert isinstance(node, ast.LocalDecl)
        assert node.type_name == "int"
        assert node.name == "x"

    def test_local_declaration_without_init(self):
        (node,) = stmts("uint y;")
        assert node.init is None

    def test_if_without_else(self):
        (node,) = stmts("IF (a) { x = 1; }")
        assert isinstance(node, ast.If)
        assert node.else_body == ()

    def test_if_else(self):
        (node,) = stmts("if (a) { x = 1; } else { x = 2; }")
        assert len(node.else_body) == 1

    def test_if_else_if_chain(self):
        (node,) = stmts("IF (a) { x = 1; } ELSE IF (b) { x = 2; }")
        assert isinstance(node.else_body[0], ast.If)

    def test_single_statement_body(self):
        (node,) = stmts("IF (a) x = 1;")
        assert len(node.then_body) == 1

    def test_while(self):
        (node,) = stmts("WHILE (n) { n = n - 1; }")
        assert isinstance(node, ast.While)

    def test_block_statement(self):
        (node,) = stmts("{ x = 1; y = 2; }")
        assert isinstance(node, ast.Block)
        assert len(node.body) == 2

    def test_multiple_statements(self):
        nodes = stmts("x = 1; y = 2; z = x + y;")
        assert len(nodes) == 3

    def test_missing_semicolon_rejected(self):
        with pytest.raises(BehaviorError):
            stmts("x = 1")

    def test_unterminated_block_rejected(self):
        with pytest.raises(BehaviorError):
            stmts("{ x = 1;")


class TestAstHelpers:
    def test_referenced_names(self):
        nodes = stmts("dst = src1 + R[idx]; IF (m) { flush(); }")
        names = ast.referenced_names(nodes)
        assert names == {"dst", "src1", "R", "idx", "m", "flush"}

    def test_walk_reaches_nested_nodes(self):
        (node,) = stmts("IF (a) { x = b ? c : d; }")
        names = {n.name for n in ast.walk(node) if isinstance(n, ast.Name)}
        assert names == {"a", "x", "b", "c", "d"}
