"""Tests for the experiment harness used by the benchmark suite."""

import pytest

from repro.apps import build_fir
from repro.bench import (
    PAPER,
    compilation_speed,
    load_app_program,
    paper_reference,
    run_and_verify,
    simulation_speed,
    speedup,
    standard_apps,
)
from repro.bench.reporting import ExperimentReport


@pytest.fixture(scope="module")
def small_fir():
    return build_fir("tinydsp", taps=4, samples=8)


class TestHarness:
    def test_compilation_speed_metrics(self, small_fir):
        metrics = compilation_speed(small_fir)
        assert set(metrics) == {"words", "compile_s", "insn_per_s"}
        assert metrics["words"] > 0
        assert metrics["insn_per_s"] > 0

    def test_simulation_speed_metrics(self, small_fir):
        metrics = simulation_speed(small_fir, "compiled")
        assert metrics["cycles"] > 0
        assert metrics["cycles_per_s"] > 0
        assert metrics["runs"] == 1

    def test_simulation_speed_repeats_until_min_runtime(self, small_fir):
        metrics = simulation_speed(small_fir, "compiled", min_runtime=0.2)
        assert metrics["runs"] >= 2

    def test_simulation_speed_verifies_results(self, small_fir):
        # Verification must run: a wrong expectation must raise.
        broken = build_fir("tinydsp", taps=4, samples=8)
        memory = broken.expected_memory
        first = min(broken.expected[memory])
        broken.expected[memory][first] += 1
        from repro.support.errors import ReproError

        with pytest.raises(ReproError):
            simulation_speed(broken, "compiled")

    def test_speedup_shape(self, small_fir):
        metrics = speedup(small_fir, "interpretive", "compiled")
        assert metrics["speedup"] > 1.0

    def test_run_and_verify_returns_simulator(self, small_fir):
        simulator = run_and_verify(small_fir, "compiled")
        assert simulator.halted

    def test_load_app_program(self, small_fir):
        model, program = load_app_program(small_fir)
        assert model.name == "tinydsp"
        assert program.word_count("pmem") > 0

    def test_standard_apps_are_the_papers_three(self):
        apps = standard_apps(gsm_words=600, fir_samples=8, adpcm_samples=8)
        assert [a.name for a in apps] == [
            "fir_c62x", "adpcm_c62x", "gsm_c62x",
        ]

    def test_paper_reference_table(self):
        assert paper_reference("speedup_gsm") == 47
        assert PAPER["compilation_speed_insn_per_s"] == (530, 560)
        with pytest.raises(KeyError):
            paper_reference("nonsense")


class TestReporting:
    def test_report_written_to_results_dir(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        report = ExperimentReport("E0-test", "unit test experiment",
                                  "paper note")
        report.add_row(workload="x", value=1.23456)
        text = report.emit()
        assert "E0-test" in text
        assert "value=1.235" in text
        written = (tmp_path / "e0-test.txt").read_text()
        assert written == text
        assert "unit test experiment" in capsys.readouterr().out
