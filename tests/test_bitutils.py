"""Unit and property tests for the bit-manipulation primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.support.bitutils import (
    BitPattern,
    bit_length_for,
    canonical_source,
    canonicalize,
    extract_field,
    insert_field,
    mask,
    saturate_signed,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.support.errors import CodingError


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(4) == 0b1111
        assert mask(16) == 0xFFFF
        assert mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitLengthFor:
    def test_zero_needs_one_bit(self):
        assert bit_length_for(0) == 1

    def test_powers_of_two(self):
        assert bit_length_for(1) == 1
        assert bit_length_for(2) == 2
        assert bit_length_for(255) == 8
        assert bit_length_for(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length_for(-5)


class TestSignedness:
    def test_to_signed_basics(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0x80, 8) == -128
        assert to_signed(0, 8) == 0

    def test_to_unsigned_basics(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-128, 8) == 0x80
        assert to_unsigned(300, 8) == 300 & 0xFF

    def test_sign_extend_without_target(self):
        assert sign_extend(0b1000, 4) == -8
        assert sign_extend(0b0111, 4) == 7

    def test_sign_extend_to_width(self):
        assert sign_extend(0xFF, 8, 16) == 0xFFFF
        assert sign_extend(0x7F, 8, 16) == 0x7F

    @given(st.integers(min_value=1, max_value=63), st.integers())
    def test_roundtrip_property(self, width, value):
        encoded = to_unsigned(value, width)
        assert 0 <= encoded <= mask(width)
        decoded = to_signed(encoded, width)
        assert to_unsigned(decoded, width) == encoded

    @given(st.integers(min_value=1, max_value=63),
           st.integers(min_value=0, max_value=2**63))
    def test_to_signed_range(self, width, raw):
        value = to_signed(raw, width)
        assert -(1 << (width - 1)) <= value < (1 << (width - 1))


class TestSaturate:
    def test_inside_range_untouched(self):
        assert saturate_signed(100, 16) == 100
        assert saturate_signed(-100, 16) == -100

    def test_clamps(self):
        assert saturate_signed(40000, 16) == 32767
        assert saturate_signed(-40000, 16) == -32768
        assert saturate_signed(128, 8) == 127
        assert saturate_signed(-129, 8) == -128

    @given(st.integers(min_value=2, max_value=40), st.integers())
    def test_always_in_range(self, width, value):
        result = saturate_signed(value, width)
        assert -(1 << (width - 1)) <= result <= (1 << (width - 1)) - 1

    @given(st.integers(min_value=2, max_value=40), st.integers())
    def test_idempotent(self, width, value):
        once = saturate_signed(value, width)
        assert saturate_signed(once, width) == once


class TestCanonicalise:
    """The shared write-canonicalisation formula.

    ``canonicalize`` is the single source of truth consumed by the
    behaviour evaluator (via ``DType.canonical``); ``canonical_source``
    renders the same arithmetic as Python source for the code
    generator and the SimIR backends.  The two must agree bit-for-bit,
    which is checked exhaustively over small widths.
    """

    def test_unsigned_masks(self):
        assert canonicalize(0x1FF, 8, False) == 0xFF
        assert canonicalize(-1, 8, False) == 0xFF
        assert canonicalize(5, 8, False) == 5

    def test_signed_wraps(self):
        assert canonicalize(0xFF, 8, True) == -1
        assert canonicalize(128, 8, True) == -128
        assert canonicalize(127, 8, True) == 127
        assert canonicalize(-129, 8, True) == 127

    def test_exhaustive_source_agreement_small_widths(self):
        """For every width 1..8, both signednesses, and every value in
        a range spanning several wraps of the width, the rendered
        source computes exactly ``canonicalize``."""
        for width in range(1, 9):
            for signed in (False, True):
                fn = eval("lambda v: " +
                          canonical_source("v", width, signed))
                span = 1 << (width + 2)
                for value in range(-span, span + 1):
                    assert fn(value) == canonicalize(value, width, signed), (
                        "width=%d signed=%r value=%d" % (width, signed, value)
                    )

    def test_matches_to_signed_to_unsigned(self):
        for width in range(1, 9):
            for value in range(-(1 << width), (1 << width) + 1):
                assert canonicalize(value, width, False) == to_unsigned(
                    value, width
                )
                assert canonicalize(value, width, True) == to_signed(
                    to_unsigned(value, width), width
                )

    @given(st.integers(min_value=1, max_value=64), st.booleans(),
           st.integers())
    def test_idempotent_and_in_range(self, width, signed, value):
        once = canonicalize(value, width, signed)
        assert canonicalize(once, width, signed) == once
        if signed:
            assert -(1 << (width - 1)) <= once < (1 << (width - 1))
        else:
            assert 0 <= once <= mask(width)

    @given(st.integers(min_value=1, max_value=64), st.booleans(),
           st.integers())
    def test_source_agreement_property(self, width, signed, value):
        fn = eval("lambda v: " + canonical_source("v", width, signed))
        assert fn(value) == canonicalize(value, width, signed)

    def test_codegen_delegates(self):
        """``canonical_write_source`` is a thin wrapper over
        ``canonical_source`` keyed by the declared dtype."""
        from repro.behavior.codegen import canonical_write_source
        from repro.lisa.model import TYPES

        for name in ("int8", "uint8", "int16", "uint32"):
            dtype = TYPES[name]
            assert canonical_write_source(dtype, "v") == canonical_source(
                "v", dtype.width, dtype.signed
            )

    def test_dtype_delegates(self):
        """``DType.canonical`` (the evaluator's write path) is the same
        formula."""
        from repro.lisa.model import TYPES

        for name in ("int8", "uint16", "int32"):
            dtype = TYPES[name]
            for value in range(-300, 300):
                assert dtype.canonical(value) == canonicalize(
                    value, dtype.width, dtype.signed
                )


class TestFieldExtraction:
    def test_msb_relative_offsets(self):
        # Word 0b1010_1100, 8 bits: offset 0 width 4 is the high nibble.
        assert extract_field(0b10101100, 0, 4, 8) == 0b1010
        assert extract_field(0b10101100, 4, 4, 8) == 0b1100
        assert extract_field(0b10101100, 2, 3, 8) == 0b101

    def test_insert_is_inverse(self):
        word = insert_field(0, 0b1010, 0, 4, 8)
        word = insert_field(word, 0b1100, 4, 4, 8)
        assert word == 0b10101100

    def test_field_overflow_rejected(self):
        with pytest.raises(CodingError):
            extract_field(0, 6, 4, 8)
        with pytest.raises(CodingError):
            insert_field(0, 1, 6, 4, 8)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=28),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=0xF),
    )
    def test_insert_extract_roundtrip(self, word, offset, width, value):
        value &= mask(width)
        updated = insert_field(word, value, offset, width, 32)
        assert extract_field(updated, offset, width, 32) == value
        # Other bits are untouched.
        field_mask = mask(width) << (32 - offset - width)
        assert (updated & ~field_mask) == (word & ~field_mask)


class TestBitPattern:
    def test_parse_with_dont_cares(self):
        pattern = BitPattern.parse("01x1")
        assert pattern.width == 4
        assert pattern.value == 0b0101
        assert pattern.care == 0b1101

    def test_parse_rejects_garbage(self):
        with pytest.raises(CodingError):
            BitPattern.parse("012")
        with pytest.raises(CodingError):
            BitPattern.parse("")

    def test_exact_and_any(self):
        exact = BitPattern.exact(0b101, 3)
        assert exact.is_fully_specified
        anything = BitPattern.any(3)
        assert not anything.is_fully_specified
        assert anything.matches(0b111) and anything.matches(0)

    def test_matches(self):
        pattern = BitPattern.parse("01x1")
        assert pattern.matches(0b0101)
        assert pattern.matches(0b0111)
        assert not pattern.matches(0b0100)
        assert not pattern.matches(0b1101)

    def test_overlaps(self):
        a = BitPattern.parse("01x1")
        b = BitPattern.parse("0111")
        c = BitPattern.parse("10xx")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_width_mismatch_rejected(self):
        with pytest.raises(CodingError):
            BitPattern.parse("01").overlaps(BitPattern.parse("011"))

    def test_concat(self):
        joined = BitPattern.parse("01").concat(BitPattern.parse("x1"))
        assert joined.width == 4
        assert str(joined) == "0b01x1"

    def test_specialise(self):
        pattern = BitPattern.any(8).specialise(2, 3, 0b101)
        assert pattern.matches(0b00101000)
        assert not pattern.matches(0b00111000)

    def test_invalid_construction(self):
        with pytest.raises(CodingError):
            BitPattern(width=0, value=0, care=0)
        with pytest.raises(CodingError):
            BitPattern(width=2, value=0b100, care=0b11)
        with pytest.raises(CodingError):
            BitPattern(width=2, value=0b01, care=0b10)

    def test_str_roundtrip(self):
        for text in ("01x1", "1111", "xxxx", "0x1x"):
            assert str(BitPattern.parse(text)) == "0b" + text

    @given(st.text(alphabet="01x", min_size=1, max_size=24))
    def test_parse_str_roundtrip_property(self, text):
        assert str(BitPattern.parse(text)) == "0b" + text

    @given(st.text(alphabet="01x", min_size=1, max_size=16),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_match_agrees_with_digitwise_check(self, text, word):
        pattern = BitPattern.parse(text)
        word &= mask(pattern.width)
        expected = all(
            ch == "x" or int(ch) == ((word >> (pattern.width - 1 - i)) & 1)
            for i, ch in enumerate(text)
        )
        assert pattern.matches(word) == expected
