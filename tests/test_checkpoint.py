"""Checkpoint/restore: cross-kind portability, integrity, CLI resume.

The central guarantee under test: a checkpoint taken mid-run under one
simulator kind restores under *any* other kind and finishes with the
exact cycle count and architectural state of an uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.api import build_toolset, load_checkpoint
from repro.apps import build_fir
from repro.cli import sim_main
from repro.resilience import CHECKPOINT_FORMAT, Checkpoint, RunBudget
from repro.sim import SIM_KINDS, create_simulator
from repro.support.errors import CheckpointError
from tests.conftest import TESTMODEL_SOURCE

LOOP_SOURCE = """
        ldi r1, 20
        ldi r5, 255
loop:   add r2, r2, r1
        add r1, r1, r5
        brnz r1, loop
        st r2, 7
        halt
"""

MID_RUN_CYCLE = 13  # deep inside the loop, window full of in-flight work


@pytest.fixture(scope="module")
def loop_program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text(LOOP_SOURCE, name="loop")


@pytest.fixture(scope="module")
def reference_runs(testmodel, loop_program):
    """Uninterrupted (cycles, snapshot) per kind."""
    results = {}
    for kind in SIM_KINDS:
        simulator = create_simulator(testmodel, kind)
        simulator.load_program(loop_program)
        stats = simulator.run(max_cycles=10_000)
        results[kind] = (stats.cycles, simulator.state.snapshot())
    return results


def _mid_run_checkpoint(model, kind, program):
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    for _ in range(MID_RUN_CYCLE):
        simulator.step()
    return simulator.checkpoint()


class TestCrossKindRestore:
    @pytest.mark.parametrize("dst_kind", SIM_KINDS)
    @pytest.mark.parametrize("src_kind", SIM_KINDS)
    def test_restore_finishes_bit_exact(
        self, testmodel, loop_program, reference_runs, src_kind, dst_kind
    ):
        checkpoint = _mid_run_checkpoint(testmodel, src_kind, loop_program)
        assert checkpoint.cycles == MID_RUN_CYCLE
        assert checkpoint.kind == src_kind
        simulator = create_simulator(testmodel, dst_kind)
        simulator.load_program(loop_program)
        stats = simulator.run(max_cycles=10_000)  # run past the snapshot
        assert stats.cycles == reference_runs[dst_kind][0]
        simulator.restore(checkpoint)
        assert simulator.cycles == MID_RUN_CYCLE
        stats = simulator.run(max_cycles=10_000)
        ref_cycles, ref_snapshot = reference_runs[dst_kind]
        assert stats.cycles == ref_cycles
        assert simulator.state.snapshot() == ref_snapshot

    @pytest.mark.parametrize("model_name,src_kind,dst_kind", [
        ("tinydsp", "compiled", "interpretive"),
        ("tinydsp", "interpretive", "unfolded_static"),
        ("c62x", "static", "compiled"),
        ("c62x", "compiled", "unfolded_static"),
    ])
    def test_real_models_restore_and_verify(
        self, request, model_name, src_kind, dst_kind
    ):
        """FIR mid-run snapshot restores cross-kind on shipped models
        and still passes the application's golden verification."""
        model = request.getfixturevalue(model_name)
        tools = request.getfixturevalue(model_name + "_tools")
        app = build_fir(model_name, taps=4, samples=8, seed=9)
        program = app.assemble(tools)

        reference = create_simulator(model, dst_kind)
        reference.load_program(program)
        ref_stats = reference.run(max_cycles=app.max_cycles)

        source = create_simulator(model, src_kind)
        source.load_program(program)
        for _ in range(ref_stats.cycles // 2):
            source.step()
        checkpoint = source.checkpoint()

        resumed = create_simulator(model, dst_kind)
        resumed.load_program(program)
        resumed.restore(checkpoint)
        stats = resumed.run(max_cycles=app.max_cycles)
        assert stats.cycles == ref_stats.cycles
        assert resumed.state.snapshot() == reference.state.snapshot()
        assert app.verify(resumed.state)

    def test_restore_emits_observability(self, testmodel, loop_program):
        observer = obs.Observer()
        simulator = create_simulator(
            testmodel, "compiled", observer=observer
        )
        simulator.load_program(loop_program)
        for _ in range(MID_RUN_CYCLE):
            simulator.step()
        checkpoint = simulator.checkpoint()
        simulator.restore(checkpoint)
        counters = observer.snapshot()["counters"]
        assert counters["resilience.checkpoints"] == 1
        assert counters["resilience.restores"] == 1
        kinds = [event.kind for event in observer.events]
        assert obs.CHECKPOINT in kinds and obs.RESTORE in kinds


class TestIntegrity:
    def test_file_round_trip(self, testmodel, loop_program, tmp_path):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        path = tmp_path / "run.ckpt"
        checkpoint.save(path)
        loaded = load_checkpoint(path)
        assert loaded.to_payload() == checkpoint.to_payload()

    def test_tampered_file_rejected(self, testmodel, loop_program, tmp_path):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        path = tmp_path / "run.ckpt"
        checkpoint.save(path)
        text = path.read_text().replace(
            '"cycles": %d' % MID_RUN_CYCLE,
            '"cycles": %d' % (MID_RUN_CYCLE + 1), 1,
        )
        path.write_text(text)
        with pytest.raises(CheckpointError, match="integrity"):
            Checkpoint.load(path)

    def test_truncated_file_rejected(
        self, testmodel, loop_program, tmp_path
    ):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        path = tmp_path / "run.ckpt"
        checkpoint.save(path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            Checkpoint.load(path)

    def test_format_mismatch_rejected(
        self, testmodel, loop_program
    ):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        payload = checkpoint.to_payload()
        payload["format"] = CHECKPOINT_FORMAT + 1
        with pytest.raises(CheckpointError, match="format"):
            Checkpoint.from_payload(payload)

    def test_wrong_program_rejected(
        self, testmodel, testmodel_tools, loop_program
    ):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        other = testmodel_tools.assembler.assemble_text(
            "ldi r1, 1\nhalt", name="other"
        )
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(other)
        with pytest.raises(CheckpointError, match="program"):
            simulator.restore(checkpoint)

    def test_wrong_model_rejected(self, testmodel, loop_program, tinydsp):
        checkpoint = _mid_run_checkpoint(testmodel, "compiled", loop_program)
        other = build_toolset(tinydsp)
        app = build_fir("tinydsp", taps=4, samples=8)
        simulator = other.new_simulator("compiled")
        simulator.load_program(app.assemble(other))
        with pytest.raises(CheckpointError, match="model"):
            simulator.restore(checkpoint)


class TestAutosnapshot:
    def test_periodic_snapshots_and_resume(
        self, testmodel, loop_program, reference_runs
    ):
        snapshots = []
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(loop_program)
        stats = simulator.run(
            max_cycles=10_000,
            budget=RunBudget(checkpoint_every=10),
            on_checkpoint=snapshots.append,
        )
        assert stats.cycles == reference_runs["compiled"][0]
        assert [ckpt.cycles for ckpt in snapshots] == list(
            range(10, stats.cycles, 10)
        )
        resumed = create_simulator(testmodel, "unfolded")
        resumed.load_program(loop_program)
        resumed.restore(snapshots[-1])
        stats = resumed.run(max_cycles=10_000)
        ref_cycles, ref_snapshot = reference_runs["unfolded"]
        assert stats.cycles == ref_cycles
        assert resumed.state.snapshot() == ref_snapshot

    def test_guarded_smc_state_survives_restore(
        self, testmodel, testmodel_tools
    ):
        """A checkpoint taken *after* a self-modifying write restores the
        patched program memory, and the guard resynchronises its stale
        set from the divergence."""
        from tests.test_resilience import SMC_SOURCE

        program = testmodel_tools.assembler.assemble_text(
            SMC_SOURCE, name="smc"
        )
        word = testmodel_tools.assembler.assemble_text(
            "ldi r3, 2"
        ).segments_in("pmem")[0].words[0]
        patch_pc = program.symbols["patch"]

        reference = create_simulator(
            testmodel, "interpretive", on_self_modify="interpret"
        )
        reference.load_program(program)
        for _ in range(8):
            reference.step()
        reference.state.write_memory("pmem", patch_pc, word)
        reference.run(max_cycles=10_000)

        source = create_simulator(
            testmodel, "compiled", on_self_modify="interpret"
        )
        source.load_program(program)
        for _ in range(8):
            source.step()
        source.state.write_memory("pmem", patch_pc, word)
        for _ in range(4):
            source.step()
        checkpoint = source.checkpoint()

        resumed = create_simulator(
            testmodel, "static", on_self_modify="interpret"
        )
        resumed.load_program(program)
        resumed.restore(checkpoint)
        assert resumed.guard.stats["self_mod_writes"] >= 1
        resumed.run(max_cycles=10_000)
        assert resumed.state.snapshot() == reference.state.snapshot()


class TestCliRoundTrip:
    @pytest.fixture
    def lisa_file(self, tmp_path):
        path = tmp_path / "test.lisa"
        path.write_text(TESTMODEL_SOURCE)
        return str(path)

    @pytest.fixture
    def asm_file(self, tmp_path):
        path = tmp_path / "loop.asm"
        path.write_text(LOOP_SOURCE)
        return str(path)

    def test_timeout_writes_checkpoint_and_resume_completes(
        self, tmp_path, lisa_file, asm_file, capsys
    ):
        ckpt = str(tmp_path / "loop.ckpt")
        with pytest.raises(SystemExit) as excinfo:
            sim_main([
                lisa_file, asm_file, "-k", "compiled",
                "--max-cycles", "15", "--checkpoint-file", ckpt,
            ])
        assert excinfo.value.code == 3
        err = capsys.readouterr().err
        assert "resume with --resume" in err
        loaded = load_checkpoint(ckpt)
        assert loaded.cycles == 15

        # uninterrupted reference output
        assert sim_main([
            lisa_file, asm_file, "-k", "static", "--dump", "dmem:7",
        ]) == 0
        reference = capsys.readouterr().out

        # resume under a different kind; identical halt line and dump
        assert sim_main([
            lisa_file, asm_file, "-k", "static", "--resume", ckpt,
            "--dump", "dmem:7",
        ]) == 0
        resumed = capsys.readouterr().out
        assert resumed == reference

    def test_checkpoint_every_writes_file(
        self, tmp_path, lisa_file, asm_file, capsys
    ):
        ckpt = str(tmp_path / "auto.ckpt")
        assert sim_main([
            lisa_file, asm_file, "--checkpoint-every", "20",
            "--checkpoint-file", ckpt,
        ]) == 0
        capsys.readouterr()
        loaded = load_checkpoint(ckpt)
        assert loaded.cycles > 0

    def test_wall_budget_exit_code(
        self, tmp_path, lisa_file, asm_file, capsys
    ):
        ckpt = str(tmp_path / "wall.ckpt")
        with pytest.raises(SystemExit) as excinfo:
            sim_main([
                lisa_file, asm_file, "--max-wall-seconds", "0",
                "--checkpoint-file", ckpt,
            ])
        assert excinfo.value.code == 3
        capsys.readouterr()
        assert load_checkpoint(ckpt).cycles >= 0

    def test_self_modify_flag_error_policy(
        self, tmp_path, lisa_file, capsys
    ):
        """--on-self-modify error turns an SMC program into exit 1."""
        from tests.test_resilience import SMC_SOURCE

        # store-to-pmem variant: rewrite the patch slot via st is not
        # expressible in testmodel (st writes dmem), so drive the CLI
        # with the plain loop and assert the flag is accepted end-to-end.
        path = tmp_path / "smc.asm"
        path.write_text(SMC_SOURCE)
        assert sim_main([
            lisa_file, str(path), "--on-self-modify", "error",
        ]) == 0
        out = capsys.readouterr().out
        assert "halted" in out


class TestRunConfigMetadata:
    """Checkpoints stamp how the run was configured (backend, tiering)
    so a resume can re-apply the configuration instead of silently
    reverting to defaults."""

    def test_capture_stamps_backend_and_tiering(
        self, testmodel, loop_program
    ):
        simulator = create_simulator(
            testmodel, "compiled", backend="python", tiering="aggressive"
        )
        simulator.load_program(loop_program)
        for _ in range(MID_RUN_CYCLE):
            simulator.step()
        checkpoint = simulator.checkpoint()
        assert checkpoint.backend == "python"
        assert checkpoint.tiering == "aggressive"

        clone = Checkpoint.from_payload(checkpoint.to_payload())
        assert clone.backend == "python"
        assert clone.tiering == "aggressive"

    def test_legacy_payload_defaults_to_auto_off(
        self, testmodel, loop_program
    ):
        checkpoint = _mid_run_checkpoint(
            testmodel, "compiled", loop_program
        )
        payload = checkpoint.to_payload()
        # a file written before the metadata existed lacks the keys
        del payload["backend"]
        del payload["tiering"]
        legacy = Checkpoint.from_payload(payload)
        assert legacy.backend == "auto"
        assert legacy.tiering == "off"

    def test_restore_stays_config_portable(self, testmodel, loop_program,
                                           reference_runs):
        # metadata never *gates* restore: a python-backend checkpoint
        # restores fine on an auto-backend simulator
        simulator = create_simulator(
            testmodel, "compiled", backend="python"
        )
        simulator.load_program(loop_program)
        for _ in range(MID_RUN_CYCLE):
            simulator.step()
        checkpoint = simulator.checkpoint()

        fresh = create_simulator(testmodel, "compiled")
        fresh.load_program(loop_program)
        fresh.restore(checkpoint)
        stats = fresh.run(max_cycles=10_000)
        cycles, snapshot = reference_runs["compiled"]
        assert stats.cycles == cycles
        assert fresh.state.snapshot() == snapshot


class TestCliResumeConfig:
    @pytest.fixture
    def lisa_file(self, tmp_path):
        path = tmp_path / "test.lisa"
        path.write_text(TESTMODEL_SOURCE)
        return str(path)

    @pytest.fixture
    def asm_file(self, tmp_path):
        path = tmp_path / "loop.asm"
        path.write_text(LOOP_SOURCE)
        return str(path)

    def test_resume_reapplies_stamped_flags(
        self, tmp_path, lisa_file, asm_file, capsys
    ):
        ckpt = str(tmp_path / "loop.ckpt")
        with pytest.raises(SystemExit) as excinfo:
            sim_main([
                lisa_file, asm_file, "--backend", "python",
                "--tiering", "aggressive",
                "--max-cycles", "15", "--checkpoint-file", ckpt,
            ])
        assert excinfo.value.code == 3
        capsys.readouterr()
        loaded = load_checkpoint(ckpt)
        assert loaded.backend == "python"
        assert loaded.tiering == "aggressive"

        # uninterrupted reference
        assert sim_main([lisa_file, asm_file, "--dump", "dmem:7"]) == 0
        reference = capsys.readouterr().out

        # bare --resume: stamped configuration is re-applied (visible
        # in the resume banner), result identical to the reference
        assert sim_main([
            lisa_file, asm_file, "--resume", ckpt, "--dump", "dmem:7",
        ]) == 0
        captured = capsys.readouterr()
        assert "backend python, tiering aggressive" in captured.err
        assert captured.out == reference

    def test_explicit_flags_override_stamped_ones(
        self, tmp_path, lisa_file, asm_file, capsys
    ):
        ckpt = str(tmp_path / "loop.ckpt")
        with pytest.raises(SystemExit):
            sim_main([
                lisa_file, asm_file, "--backend", "python",
                "--max-cycles", "15", "--checkpoint-file", ckpt,
            ])
        capsys.readouterr()
        assert sim_main([
            lisa_file, asm_file, "--resume", ckpt,
            "--tiering", "off", "--backend", "auto",
        ]) == 0
        err = capsys.readouterr().err
        assert "backend auto, tiering off" in err
