"""Tests for the command-line entry points."""

import pytest

from repro.cli import asm_main, lisa_main, sim_main
from tests.conftest import TESTMODEL_SOURCE

ASM_SOURCE = """
        .entry start
start:  ldi r1, 6
        add r2, r1, r1
        st r2, 3
        halt
"""


@pytest.fixture
def lisa_file(tmp_path):
    path = tmp_path / "test.lisa"
    path.write_text(TESTMODEL_SOURCE)
    return str(path)


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text(ASM_SOURCE)
    return str(path)


class TestLisaMain:
    def test_shipped_model_summary(self, capsys):
        assert lisa_main(["tinydsp"]) == 0
        out = capsys.readouterr().out
        assert "model tinydsp" in out

    def test_lisa_file(self, capsys, lisa_file):
        assert lisa_main([lisa_file]) == 0
        assert "testmodel" in capsys.readouterr().out

    def test_translation_timing(self, capsys):
        assert lisa_main(["c62x", "--time"]) == 0
        assert "translation time" in capsys.readouterr().out

    def test_bad_model_exits_nonzero(self, lisa_file):
        with pytest.raises(SystemExit):
            lisa_main(["/nonexistent/file.lisa"])

    def test_emit_simulator(self, capsys, tmp_path, lisa_file, asm_file):
        obj = str(tmp_path / "prog.dspo")
        asm_main([lisa_file, asm_file, "-o", obj])
        capsys.readouterr()
        assert lisa_main([lisa_file, "--emit-simulator", obj]) == 0
        out = capsys.readouterr().out
        assert "TABLE_SPEC" in out


class TestAsmMain:
    def test_assemble_reports_sizes(self, capsys, lisa_file, asm_file):
        assert asm_main([lisa_file, asm_file]) == 0
        out = capsys.readouterr().out
        assert "assembled 4 program words" in out

    def test_assemble_writes_object(self, capsys, tmp_path, lisa_file,
                                    asm_file):
        obj = str(tmp_path / "out.dspo")
        assert asm_main([lisa_file, asm_file, "-o", obj]) == 0
        from repro.tools.objfile import Program

        assert Program.load(obj).word_count("pmem") == 4

    def test_disassemble(self, capsys, tmp_path, lisa_file, asm_file):
        obj = str(tmp_path / "out.dspo")
        asm_main([lisa_file, asm_file, "-o", obj])
        capsys.readouterr()
        assert asm_main([lisa_file, obj, "--disassemble"]) == 0
        out = capsys.readouterr().out
        assert "ldi r1, 6" in out

    def test_bad_assembly_exits_nonzero(self, tmp_path, lisa_file):
        bad = tmp_path / "bad.asm"
        bad.write_text("frobnicate r1\n")
        with pytest.raises(SystemExit):
            asm_main([lisa_file, str(bad)])


class TestSimMain:
    def test_run_assembly_directly(self, capsys, lisa_file, asm_file):
        assert sim_main([lisa_file, asm_file, "--stats",
                         "--dump", "dmem:3"]) == 0
        out = capsys.readouterr().out
        assert "halted after" in out
        assert "dmem[3:4] = [12]" in out
        assert "cycles/s" in out

    def test_run_object_file(self, capsys, tmp_path, lisa_file, asm_file):
        obj = str(tmp_path / "p.dspo")
        asm_main([lisa_file, asm_file, "-o", obj])
        capsys.readouterr()
        assert sim_main([lisa_file, obj, "-k", "interpretive"]) == 0
        assert "halted after" in capsys.readouterr().out

    def test_all_kinds_accepted(self, capsys, lisa_file, asm_file):
        from repro.sim import SIM_KINDS

        for kind in SIM_KINDS:
            assert sim_main([lisa_file, asm_file, "-k", kind]) == 0
        capsys.readouterr()

    def test_dump_range(self, capsys, lisa_file, asm_file):
        sim_main([lisa_file, asm_file, "--dump", "dmem:0:4"])
        out = capsys.readouterr().out
        assert "dmem[0:4]" in out

    def test_shipped_model_with_app(self, capsys, tmp_path):
        from repro.apps import build_fir

        app = build_fir("tinydsp", taps=4, samples=8)
        path = tmp_path / "fir.asm"
        path.write_text(app.source)
        assert sim_main(["tinydsp", str(path)]) == 0
        assert "halted" in capsys.readouterr().out


class TestKccMain:
    KERNEL = """
array out[4] @ 0;
int i = 0;
while (i != 4) {
    out[i] = i * 10;
    i = i + 1;
}
"""

    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "k.k"
        path.write_text(self.KERNEL)
        return str(path)

    def test_compile_to_stdout(self, capsys, kernel_file):
        from repro.cli import kcc_main

        assert kcc_main(["tinydsp", kernel_file]) == 0
        out = capsys.readouterr().out
        assert ".entry kernel_start" in out
        assert "halt" in out

    def test_compile_and_run(self, capsys, kernel_file):
        from repro.cli import kcc_main

        assert kcc_main(["c62x", kernel_file, "--run",
                         "--dump", "dmem:0:4"]) == 0
        out = capsys.readouterr().out
        assert "dmem[0:4] = [0, 10, 20, 30]" in out

    def test_write_assembly_file(self, capsys, tmp_path, kernel_file):
        from repro.cli import kcc_main

        out_path = str(tmp_path / "k.asm")
        assert kcc_main(["tinydsp", kernel_file, "-o", out_path]) == 0
        assert "generated by repro.kcc" in open(out_path).read()

    def test_bad_target_exits_nonzero(self, kernel_file):
        from repro.cli import kcc_main

        with pytest.raises(SystemExit):
            kcc_main(["mips", kernel_file])

    def test_missing_source_exits_nonzero(self):
        from repro.cli import kcc_main

        with pytest.raises(SystemExit):
            kcc_main(["tinydsp", "/nonexistent.k"])


RAW_C62X = """
    mvk a4, 100
    ldw a5, a4, 0
    add a6, a5, a5
    halt
"""

CLEAN_C62X = """
    mvk a4, 100
    ldw a5, a4, 0
    nop
    nop
    nop
    add a6, a5, a5
    halt
"""

BAD_BRANCH_C62X = """
    b 500
    halt
"""


class TestLintMain:
    @pytest.fixture
    def c62x_asm(self, tmp_path):
        def write(text):
            path = tmp_path / "prog.asm"
            path.write_text(text)
            return str(path)

        return write

    def test_clean_program_exits_zero(self, capsys, c62x_asm):
        from repro.cli import lint_main

        assert lint_main(["c62x", c62x_asm(CLEAN_C62X)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out
        assert "hazard_free" in out

    def test_hazard_warning_exits_zero_without_werror(self, capsys,
                                                      c62x_asm):
        from repro.cli import lint_main

        assert lint_main(["c62x", c62x_asm(RAW_C62X)]) == 0
        assert "RAW hazard" in capsys.readouterr().out

    def test_werror_promotes_warnings(self, capsys, c62x_asm):
        from repro.cli import lint_main

        assert lint_main(["c62x", c62x_asm(RAW_C62X), "--Werror"]) == 1
        capsys.readouterr()

    def test_error_finding_exits_one(self, capsys, c62x_asm):
        from repro.cli import lint_main

        assert lint_main(["c62x", c62x_asm(BAD_BRANCH_C62X)]) == 1
        assert "out" in capsys.readouterr().out

    def test_json_output(self, capsys, c62x_asm):
        import json as json_mod

        from repro.cli import lint_main

        assert lint_main(["c62x", c62x_asm(RAW_C62X), "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] >= 1
        assert payload["findings"][0]["check"].startswith("hazard.")
        assert payload["safety"]["0x1"] == "conflicting"
        assert payload["verdicts"]["conflicting"] == 2

    def test_object_file_input(self, capsys, tmp_path, c62x_asm):
        from repro.cli import lint_main

        obj = str(tmp_path / "p.dspo")
        asm_main(["c62x", c62x_asm(CLEAN_C62X), "-o", obj])
        capsys.readouterr()
        assert lint_main(["c62x", obj]) == 0

    def test_compile_failure_exits_two(self, tmp_path):
        from repro.cli import lint_main

        bad = tmp_path / "bad.asm"
        bad.write_text("definitely not c62x assembly\n")
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["c62x", str(bad)])
        assert excinfo.value.code == 2

    def test_deterministic_output(self, capsys, c62x_asm):
        from repro.cli import lint_main

        path = c62x_asm(RAW_C62X)
        lint_main(["c62x", path])
        first = capsys.readouterr().out
        lint_main(["c62x", path])
        assert capsys.readouterr().out == first


class TestVerifySchedule:
    def test_requires_static_kind(self, tmp_path):
        prog = tmp_path / "p.asm"
        prog.write_text(CLEAN_C62X)
        with pytest.raises(SystemExit) as excinfo:
            sim_main(["c62x", str(prog), "--verify-schedule"])
        assert excinfo.value.code == 2

    def test_clean_program_verifies(self, capsys, tmp_path):
        prog = tmp_path / "p.asm"
        prog.write_text(CLEAN_C62X)
        assert sim_main(["c62x", str(prog), "-k", "static",
                         "--verify-schedule"]) == 0
        assert "halted" in capsys.readouterr().out

    def test_conflicting_program_fails(self, capsys, tmp_path):
        prog = tmp_path / "p.asm"
        prog.write_text(RAW_C62X)
        with pytest.raises(SystemExit):
            sim_main(["c62x", str(prog), "-k", "static",
                      "--verify-schedule"])
