"""Tests for coding layout, decoding and encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.decoder import InstructionDecoder
from repro.coding.encoder import InstructionEncoder, OperandSpec
from repro.coding.layout import layout_of
from repro.lisa import model as m
from repro.support.errors import CodingError, DecodeError


@pytest.fixture(scope="module")
def decoder(testmodel):
    return InstructionDecoder(testmodel)


@pytest.fixture(scope="module")
def encoder(testmodel):
    return InstructionEncoder(testmodel)


def insn_spec(opname, mode=0, fields=None, children=None):
    return OperandSpec(
        "insn",
        fields={"mode": mode},
        children={
            "op": OperandSpec(opname, fields=fields or {},
                              children=children or {})
        },
    )


def reg_spec(index):
    return OperandSpec("reg", fields={"idx": index})


class TestLayout:
    def test_offsets_are_msb_relative(self, testmodel):
        ldi = testmodel.operations["ldi"]
        layout = layout_of(ldi)
        assert layout.width == 15
        offsets = [(p.offset, p.width) for p in layout.placed]
        assert offsets == [(0, 4), (4, 3), (7, 8)]

    def test_find_by_name(self, testmodel):
        ldi = testmodel.operations["ldi"]
        placed = layout_of(ldi).find("imm")
        assert placed.offset == 7
        assert placed.width == 8

    def test_find_unknown_rejected(self, testmodel):
        with pytest.raises(CodingError):
            layout_of(testmodel.operations["ldi"]).find("nope")

    def test_layout_cached(self, testmodel):
        op = testmodel.operations["add"]
        assert layout_of(op) is layout_of(op)

    def test_layout_requires_coding(self, testmodel):
        with pytest.raises(CodingError):
            layout_of(testmodel.operations["note_store"])


class TestEncoding:
    def test_encode_ldi(self, encoder):
        word = encoder.encode(
            insn_spec("ldi", fields={"imm": 0x42}, children={"dst": reg_spec(5)})
        )
        # mode(0) | 0010 | 101 | 01000010
        assert word == 0b0_0010_101_01000010

    def test_missing_field_rejected(self, encoder):
        with pytest.raises(CodingError):
            encoder.encode(insn_spec("ldi", children={"dst": reg_spec(0)}))

    def test_missing_child_rejected(self, encoder):
        with pytest.raises(CodingError):
            encoder.encode(insn_spec("ldi", fields={"imm": 1}))

    def test_field_overflow_rejected(self, encoder):
        with pytest.raises(CodingError):
            encoder.encode(
                insn_spec("ldi", fields={"imm": 256},
                          children={"dst": reg_spec(0)})
            )

    def test_unknown_extra_field_rejected(self, encoder):
        with pytest.raises(CodingError):
            encoder.encode(
                insn_spec("ldi", fields={"imm": 1, "bogus": 0},
                          children={"dst": reg_spec(0)})
            )

    def test_wrong_alternative_rejected(self, encoder):
        spec = insn_spec("ldi", fields={"imm": 1},
                         children={"dst": OperandSpec("ldi")})
        with pytest.raises(CodingError):
            encoder.encode(spec)

    def test_partial_encoding(self, encoder):
        value, width = encoder.encode_partial(reg_spec(6))
        assert (value, width) == (6, 3)

    def test_non_root_full_encode_rejected(self, encoder):
        with pytest.raises(CodingError):
            encoder.encode(reg_spec(1))


class TestDecoding:
    def test_decode_ldi(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("ldi", fields={"imm": 7}, children={"dst": reg_spec(2)})
        )
        node = decoder.decode(word)
        assert node.operation.name == "insn"
        op = node.children["op"]
        assert op.operation.name == "ldi"
        assert op.fields["imm"] == 7
        assert op.children["dst"].fields["idx"] == 2

    def test_decode_selects_by_opcode(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("add", children={
                "dst": reg_spec(1), "src1": reg_spec(2), "src2": reg_spec(3),
            })
        )
        assert decoder.decode(word).children["op"].operation.name == "add"

    def test_dont_care_bits_ignored(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("add", children={
                "dst": reg_spec(1), "src1": reg_spec(2), "src2": reg_spec(3),
            })
        )
        node = decoder.decode(word | 0b11)  # pad bits are don't-care
        assert node.children["op"].operation.name == "add"

    def test_unmatched_word_rejected(self, decoder):
        # opcode 0b0110 in the op slot is not assigned.
        with pytest.raises(DecodeError):
            decoder.decode(0b0_0110_000_00000000)

    def test_oversized_word_rejected(self, decoder):
        with pytest.raises(DecodeError):
            decoder.decode(1 << 16)

    def test_negative_word_rejected(self, decoder):
        with pytest.raises(DecodeError):
            decoder.decode(-1)

    def test_describe_is_readable(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("ldi", fields={"imm": 9}, children={"dst": reg_spec(1)})
        )
        text = decoder.decode(word).describe()
        assert "ldi" in text and "imm=9" in text


class TestDecodedNodeLookup:
    def test_own_field(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("ldi", fields={"imm": 3}, children={"dst": reg_spec(1)})
        )
        node = decoder.decode(word)
        assert node.lookup("mode") == ("label", 0)

    def test_reference_resolves_through_ancestors(self, decoder, encoder,
                                                  testmodel):
        word = encoder.encode(
            insn_spec("add", mode=1, children={
                "dst": reg_spec(1), "src1": reg_spec(2), "src2": reg_spec(3),
            })
        )
        add = decoder.decode(word).children["op"]
        # 'mode' is a REFERENCE of add, declared by the root.
        assert add.lookup("mode") == ("label", 1)

    def test_non_reference_does_not_climb(self, decoder, encoder, testmodel):
        word = encoder.encode(
            insn_spec("ldi", fields={"imm": 3}, children={"dst": reg_spec(1)})
        )
        reg = decoder.decode(word).children["op"].children["dst"]
        # 'mode' is not a REFERENCE of reg, so it must not resolve.
        with pytest.raises(Exception):
            reg.lookup("mode")

    def test_condition_env(self, decoder, encoder, testmodel):
        word = encoder.encode(
            insn_spec("add", mode=1, children={
                "dst": reg_spec(1), "src1": reg_spec(2), "src2": reg_spec(3),
            })
        )
        add = decoder.decode(word).children["op"]
        env = add.condition_env(testmodel)
        assert env["mode"] == 1
        assert env["dst"] == "reg"

    def test_walk_visits_whole_tree(self, decoder, encoder):
        word = encoder.encode(
            insn_spec("add", children={
                "dst": reg_spec(1), "src1": reg_spec(2), "src2": reg_spec(3),
            })
        )
        names = [n.operation.name for n in decoder.decode(word).walk()]
        assert names.count("reg") == 3
        assert "insn" in names and "add" in names


class TestRoundTripProperties:
    @given(
        mode=st.integers(0, 1),
        dst=st.integers(0, 7),
        src1=st.integers(0, 7),
        src2=st.integers(0, 7),
    )
    def test_add_roundtrip(self, testmodel, mode, dst, src1, src2):
        encoder = InstructionEncoder(testmodel)
        decoder = InstructionDecoder(testmodel)
        spec = insn_spec("add", mode=mode, children={
            "dst": reg_spec(dst), "src1": reg_spec(src1),
            "src2": reg_spec(src2),
        })
        word = encoder.encode(spec)
        rebuilt = encoder.spec_from_decoded(decoder.decode(word))
        assert encoder.encode(rebuilt) == word

    @given(mode=st.integers(0, 1), imm=st.integers(0, 255),
           dst=st.integers(0, 7))
    def test_ldi_fields_survive(self, testmodel, mode, imm, dst):
        encoder = InstructionEncoder(testmodel)
        decoder = InstructionDecoder(testmodel)
        word = encoder.encode(
            insn_spec("ldi", mode=mode, fields={"imm": imm},
                      children={"dst": reg_spec(dst)})
        )
        node = decoder.decode(word)
        op = node.children["op"]
        assert node.fields["mode"] == mode
        assert op.fields["imm"] == imm
        assert op.children["dst"].fields["idx"] == dst

    @given(word=st.integers(0, 0xFFFF))
    def test_decode_total_or_error(self, testmodel, word):
        """Decoding either produces a tree or raises DecodeError --
        never anything else -- and a successful decode re-encodes to a
        word the same decoder accepts."""
        decoder = InstructionDecoder(testmodel)
        encoder = InstructionEncoder(testmodel)
        try:
            node = decoder.decode(word)
        except DecodeError:
            return
        rebuilt = encoder.encode(encoder.spec_from_decoded(node))
        again = decoder.decode(rebuilt)
        assert again.describe() == node.describe()
