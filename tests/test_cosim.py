"""Tests for HW/SW co-simulation (the paper's named future work)."""

import pytest

from repro.cosim import (
    CoSimulation,
    Component,
    DmaEngine,
    ProcessorComponent,
    RingBuffer,
    StreamSink,
    StreamSource,
)
from repro.sim import create_simulator
from repro.support.errors import SimulationError

# A tinydsp stream-processing program: read samples from an input ring
# fed by hardware, double them, write them to an output ring drained by
# hardware.  Exercises busy-waiting on device-updated cells in both
# directions (data available / space available).
STREAM_PROGRAM = """
        .entry start
        .equ INB, 0
        .equ INHEAD, 16
        .equ INTAIL, 17
        .equ OUTB, 32
        .equ OUTHEAD, 48
        .equ OUTTAIL, 49
        .equ COUNT, 12

start:  ldi r0, 1
        ldi r6, 7          ; ring mask (length 8)
        ldi r5, COUNT
main:
win:    ld r1, INHEAD      ; wait until input ring non-empty
        ld r2, INTAIL
        sub r1, r1, r2
        brnz r1, got
        br win
got:    ldi r3, INB        ; read dmem[INB + tail]
        add r3, r3, r2
        ld r3, *3
        add r3, r3, r3     ; the "signal processing": y = 2x
        add r2, r2, r0     ; input tail = (tail + 1) & 7
        and r2, r2, r6
        st r2, INTAIL
wout:   ld r1, OUTHEAD     ; wait until output ring has space
        add r1, r1, r0
        and r1, r1, r6
        ld r2, OUTTAIL
        sub r4, r1, r2
        brnz r4, space
        br wout
space:  ld r2, OUTHEAD     ; write dmem[OUTB + head]
        ldi r4, OUTB
        add r4, r4, r2
        st r3, *4
        add r2, r2, r0     ; output head = (head + 1) & 7
        and r2, r2, r6
        st r2, OUTHEAD
        sub r5, r5, r0
        brnz r5, main
        halt
"""

SAMPLES = [3, -1, 7, 10, -8, 2, 5, 5, 9, -4, 0, 6]

# DSP requests a 5-word copy from a DMA engine, busy-waits on the
# doorbell, then checksums the copied block.
DMA_PROGRAM = """
        .entry start
        .equ CMD, 56
        .section dmem
        .org 64
        .word 11, 22, 33, 44, 55
        .section pmem
start:  ldi r1, 64
        st r1, CMD + 1     ; source
        ldi r1, 80
        st r1, CMD + 2     ; destination
        ldi r1, 5
        st r1, CMD + 3     ; word count
        ldi r1, 1
        st r1, CMD         ; ring the doorbell
wait:   ld r1, CMD
        brnz r1, wait      ; poll until the engine clears it
        ldi r2, 80         ; checksum the copied block
        ldi r3, 0
        ldi r4, 5
        ldi r0, 1
sum:    ld r1, *2
        add r3, r3, r1
        add r2, r2, r0
        sub r4, r4, r0
        brnz r4, sum
        st r3, 100
        halt
"""


def build_stream_cosim(tinydsp, tinydsp_tools, kind):
    program = tinydsp_tools.assembler.assemble_text(STREAM_PROGRAM)
    simulator = create_simulator(tinydsp, kind)
    simulator.load_program(program)
    cosim = CoSimulation()
    cosim.add_processor(simulator)
    in_ring = RingBuffer("dmem", base=0, length=8, head=16, tail=17)
    out_ring = RingBuffer("dmem", base=32, length=8, head=48, tail=49)
    source = cosim.add(StreamSource(simulator.state, in_ring, SAMPLES))
    sink = cosim.add(
        StreamSink(simulator.state, out_ring, expect=len(SAMPLES))
    )
    return cosim, simulator, source, sink


class TestStreamCoSim:
    def test_end_to_end_stream(self, tinydsp, tinydsp_tools):
        cosim, simulator, source, sink = build_stream_cosim(
            tinydsp, tinydsp_tools, "compiled"
        )
        cosim.run(max_cycles=100_000)
        assert sink.received == [2 * s for s in SAMPLES]
        assert source.delivered == len(SAMPLES)
        assert simulator.halted

    def test_backpressure_with_slow_source(self, tinydsp, tinydsp_tools):
        program = tinydsp_tools.assembler.assemble_text(STREAM_PROGRAM)
        simulator = create_simulator(tinydsp, "compiled")
        simulator.load_program(program)
        cosim = CoSimulation()
        cosim.add_processor(simulator)
        in_ring = RingBuffer("dmem", base=0, length=8, head=16, tail=17)
        out_ring = RingBuffer("dmem", base=32, length=8, head=48, tail=49)

        class TricklingSource(StreamSource):
            """Delivers one sample every 40 cycles."""

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._tick = 0

            def step(self):
                self._tick += 1
                if self._tick % 40 == 0:
                    super().step()

        cosim.add(TricklingSource(simulator.state, in_ring, SAMPLES))
        sink = cosim.add(
            StreamSink(simulator.state, out_ring, expect=len(SAMPLES))
        )
        cycles = cosim.run(max_cycles=200_000)
        assert sink.received == [2 * s for s in SAMPLES]
        # The DSP spent most of its time waiting on the slow device.
        assert cycles >= 40 * len(SAMPLES)

    @pytest.mark.parametrize("kind", ["interpretive", "compiled", "static",
                                      "unfolded"])
    def test_cosim_identical_across_levels(self, tinydsp, tinydsp_tools,
                                           kind):
        """The accuracy claim extended across the HW/SW boundary."""
        reference, *_ = _run_stream(tinydsp, tinydsp_tools, "compiled")
        candidate, *_ = _run_stream(tinydsp, tinydsp_tools, kind)
        assert candidate == reference


def _run_stream(tinydsp, tinydsp_tools, kind):
    cosim, simulator, source, sink = build_stream_cosim(
        tinydsp, tinydsp_tools, kind
    )
    cycles = cosim.run(max_cycles=100_000)
    return (cycles, sink.received, simulator.state.snapshot()), cosim


class TestDmaCoSim:
    def test_copy_and_checksum(self, tinydsp, tinydsp_tools):
        program = tinydsp_tools.assembler.assemble_text(DMA_PROGRAM)
        simulator = create_simulator(tinydsp, "compiled")
        simulator.load_program(program)
        cosim = CoSimulation()
        cosim.add_processor(simulator)
        dma = cosim.add(
            DmaEngine(simulator.state, "dmem", cmd=56, bandwidth=1)
        )
        cosim.run(max_cycles=50_000)
        assert simulator.state.dmem[80:85] == [11, 22, 33, 44, 55]
        assert simulator.state.dmem[100] == 11 + 22 + 33 + 44 + 55
        assert dma.transfers == 1

    def test_bandwidth_changes_latency_not_result(self, tinydsp,
                                                  tinydsp_tools):
        cycles = {}
        for bandwidth in (1, 5):
            program = tinydsp_tools.assembler.assemble_text(DMA_PROGRAM)
            simulator = create_simulator(tinydsp, "compiled")
            simulator.load_program(program)
            cosim = CoSimulation()
            cosim.add_processor(simulator)
            cosim.add(
                DmaEngine(simulator.state, "dmem", cmd=56,
                          bandwidth=bandwidth)
            )
            cycles[bandwidth] = cosim.run(max_cycles=50_000)
            assert simulator.state.dmem[100] == 165
        assert cycles[5] <= cycles[1]


class TestKernel:
    def test_empty_cosim_rejected(self):
        with pytest.raises(SimulationError):
            CoSimulation().run()

    def test_non_component_rejected(self):
        with pytest.raises(SimulationError):
            CoSimulation().add(object())

    def test_runaway_detected(self, tinydsp, tinydsp_tools):
        # A DSP waiting forever on a device nobody services.
        program = tinydsp_tools.assembler.assemble_text("""
wait:   ld r1, 10
        brnz r1, done
        br wait
done:   halt
""")
        simulator = create_simulator(tinydsp, "compiled")
        simulator.load_program(program)
        cosim = CoSimulation()
        cosim.add_processor(simulator)
        with pytest.raises(SimulationError):
            cosim.run(max_cycles=1000)

    def test_processor_component_reports_finished(self, tinydsp,
                                                  tinydsp_tools):
        program = tinydsp_tools.assembler.assemble_text("halt")
        simulator = create_simulator(tinydsp, "compiled")
        simulator.load_program(program)
        component = ProcessorComponent(simulator)
        assert not component.finished()
        cosim = CoSimulation()
        cosim.add(component)
        cosim.run()
        assert component.finished()

    def test_custom_component(self):
        class Counter(Component):
            def __init__(self):
                self.ticks = 0

            def step(self):
                self.ticks += 1

            def finished(self):
                return self.ticks >= 3

        counter = Counter()
        cosim = CoSimulation()
        cosim.add(counter)
        cosim.run()
        assert counter.ticks == 3

    def test_ring_buffer_validation(self):
        with pytest.raises(SimulationError):
            RingBuffer("dmem", base=0, length=1, head=8, tail=9)


class TestDualProcessorCoSim:
    """Two DSPs coupled by a hardware link that copies a mailbox cell
    from one data memory to the other -- a minimal multiprocessor."""

    PRODUCER = """
        .entry start
start:  ldi r0, 1
        ldi r5, 5          ; messages to send
        ldi r3, 10         ; payload seed
loop:   ld r1, 0           ; wait until mailbox empty (0)
        brnz r1, loop
        st r3, 1           ; payload
        st r0, 0           ; flag: message ready
        add r3, r3, r3     ; next payload
        sub r5, r5, r0
        brnz r5, loop
fin:    ld r1, 0           ; wait for last message to drain
        brnz r1, fin
        halt
"""

    CONSUMER = """
        .entry start
start:  ldi r0, 1
        ldi r5, 5
        ldi r6, 32         ; output pointer
loop:   ld r1, 0           ; wait for delivery flag
        brnz r1, have
        br loop
have:   ld r2, 1           ; payload
        st r2, *6
        add r6, r6, r0
        ldi r1, 0
        st r1, 0           ; acknowledge
        sub r5, r5, r0
        brnz r5, loop
        halt
"""

    class Link(Component):
        """Copies (flag, payload) producer->consumer and the
        acknowledgement back, one transfer per cycle."""

        def __init__(self, producer_state, consumer_state):
            self.p = producer_state
            self.c = consumer_state

        def step(self):
            # Deliver: producer flagged and consumer mailbox free.
            if self.p.dmem[0] == 1 and self.c.dmem[0] == 0:
                self.c.dmem[1] = self.p.dmem[1]
                self.c.dmem[0] = 1
                self.p.dmem[0] = 2  # in flight
            # Acknowledge: consumer cleared its flag.
            if self.p.dmem[0] == 2 and self.c.dmem[0] == 0:
                self.p.dmem[0] = 0

    def test_message_passing(self, tinydsp, tinydsp_tools):
        producer = create_simulator(tinydsp, "compiled")
        producer.load_program(
            tinydsp_tools.assembler.assemble_text(self.PRODUCER)
        )
        consumer = create_simulator(tinydsp, "unfolded")
        consumer.load_program(
            tinydsp_tools.assembler.assemble_text(self.CONSUMER)
        )
        cosim = CoSimulation()
        cosim.add_processor(producer, "producer")
        cosim.add_processor(consumer, "consumer")
        cosim.add(self.Link(producer.state, consumer.state))
        cosim.run(max_cycles=100_000)
        assert consumer.state.dmem[32:37] == [10, 20, 40, 80, 160]
        assert producer.halted and consumer.halted
