"""Tests for the model data-base serialisation."""

import json

import pytest

from repro.lisa.database import model_to_dict, model_to_json


@pytest.fixture(scope="module")
def db(testmodel):
    return model_to_dict(testmodel)


class TestModelDump:
    def test_json_round_trips(self, testmodel):
        text = model_to_json(testmodel)
        assert json.loads(text)["name"] == "testmodel"

    def test_resources_described(self, db):
        registers = {r["name"]: r for r in db["registers"]}
        assert registers["R"]["count"] == 8
        assert registers["R"]["width"] == 32
        assert registers["ACC"]["count"] is None
        assert registers["ACC"]["width"] == 16
        memories = {mem["name"]: mem for mem in db["memories"]}
        assert memories["pmem"]["size"] == 256
        assert db["pc"] == "PC"

    def test_pipeline_and_config(self, db):
        assert db["pipeline"]["stages"] == ["FE", "DE", "EX", "WB"]
        assert db["config"]["word_size"] == 16
        assert db["config"]["root_operation"] == "insn"
        assert db["config"]["defines"] == {"SHORT": 0, "LONG": 1}

    def test_coding_rendered(self, db):
        ops = {op["name"]: op for op in db["operations"]}
        ldi = ops["ldi"]
        assert ldi["coding"] == [
            {"pattern": "0b0010"},
            {"slot": "dst", "width": 3},
            {"label": "imm", "width": 8},
        ]
        assert ldi["coding_width"] == 15

    def test_guarded_operation_summary(self, db):
        add = {op["name"]: op for op in db["operations"]}["add"]
        assert add["sections"]["guarded"]
        assert add["sections"]["behavior_variants"] == 2
        texts = {v["text"] for v in add["syntax_variants"]}
        assert any('"add"' in t for t in texts)
        assert any('"addl"' in t for t in texts)
        bindings = {
            v["text"].split()[0]: v["bindings"]
            for v in add["syntax_variants"]
        }
        assert bindings['"add"'] == {"mode": 0}
        assert bindings['"addl"'] == {"mode": 1}

    def test_written_names_collected(self, db):
        ops = {op["name"]: op for op in db["operations"]}
        assert "dmem" in ops["st"]["sections"]["written_names"]
        assert "ACC" in ops["note_store"]["sections"]["written_names"]
        assert ops["st"]["sections"]["activates"] == ["note_store"]

    def test_helper_without_coding(self, db):
        note = {op["name"]: op for op in db["operations"]}["note_store"]
        assert note["coding"] is None
        assert note["references"] == ["addr"]

    def test_cli_dump(self, capsys):
        from repro.cli import lisa_main

        assert lisa_main(["tinydsp", "--dump-db"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "tinydsp"
        assert data["config"]["word_size"] == 16

    def test_all_shipped_models_dump(self):
        from repro.models import MODEL_REGISTRY, load_model

        for name in MODEL_REGISTRY:
            data = model_to_dict(load_model(name))
            assert data["operations"], name
            json.dumps(data)  # must be serialisable
