"""Tests for diagnostics plumbing and error formatting."""

import pytest

from repro.support.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    SourceLocation,
)
from repro.support.errors import DecodeError, LisaSyntaxError, ReproError


class TestSourceLocation:
    def test_str_format(self):
        loc = SourceLocation("m.lisa", 3, 9)
        assert str(loc) == "m.lisa:3:9"


class TestDiagnosticSink:
    def test_warn_and_note(self):
        sink = DiagnosticSink()
        sink.warn("something odd")
        sink.note("for the record")
        assert len(sink) == 2
        assert len(sink.warnings) == 1
        assert sink.warnings[0].message == "something odd"

    def test_iteration_and_str(self):
        sink = DiagnosticSink()
        sink.warn("w", SourceLocation("f", 1, 2))
        (diag,) = list(sink)
        assert "f:1:2" in str(diag)
        assert "warning" in str(diag)

    def test_extend(self):
        a = DiagnosticSink()
        b = DiagnosticSink()
        a.warn("one")
        b.warn("two")
        a.extend(b)
        assert len(a) == 2


class TestErrorFormatting:
    def test_location_prefixed(self):
        err = LisaSyntaxError("bad token", SourceLocation("x.lisa", 7, 1))
        assert str(err).startswith("x.lisa:7:1: ")

    def test_no_location(self):
        assert str(ReproError("plain")) == "plain"

    def test_decode_error_includes_word_and_address(self):
        err = DecodeError("no match", word=0xBEEF, address=0x10)
        text = str(err)
        assert "0xbeef" in text
        assert "0x10" in text

    def test_decode_error_word_only(self):
        err = DecodeError("no match", word=0x1)
        assert "address" not in str(err)

    def test_errors_inherit_repro_error(self):
        from repro.support import errors

        for name in ("LisaError", "LisaSyntaxError", "LisaSemanticError",
                     "BehaviorError", "CodingError", "DecodeError",
                     "AssemblerError", "SimulationError", "LinkError"):
            assert issubclass(getattr(errors, name), errors.ReproError)
