"""Tests for the retargetable disassembler, including round-trips."""

import pytest

from repro.support.errors import AssemblerError

LINES_TINYDSP = [
    "nop",
    "add r1, r2, r3",
    "adds r1, r2, r3",
    "sub r4, r5, r6",
    "subs r4, r5, r6",
    "mul r0, r1, r2",
    "muls r0, r1, r2",
    "and r1, r1, r2",
    "or r3, r3, r4",
    "xor r5, r5, r6",
    "shl r1, r2, 3",
    "shr r1, r2, 7",
    "ldi r7, 42",
    "ld r1, 100",
    "ld r1, * 2",
    "st r3, 99",
    "st r3, * 4",
    "br 123",
    "brnz r2, 45",
    "mov r6, r7",
    "halt",
]

LINES_C54X = [
    "nop",
    "ld *ar1+, a",
    "ld 5, b",
    "stl a, *ar2",
    "sth b, *ar3-",
    "add *ar1, a",
    "sub *ar2+, b",
    "add 100, a",
    "sftl a, 4",
    "sftr b, 2",
    "lt *ar4+",
    "mpy *ar5, a",
    "mac *ar6+, b",
    "mas *ar7, a",
    "stm 200, ar3",
    "adar ar1, 9",
    "mar *ar2+",
    "b 777",
    "banz 45, ar0",
    "halt",
]

LINES_C62X = [
    "nop",
    "add a1, a2, b3",
    "sub b4, b5, a6",
    "and a7, a8, a9",
    "or b1, b2, b3",
    "xor a0, a1, a2",
    "cmpeq a3, a4, b5",
    "cmpgt a1, b2, b3",
    "cmplt b1, a2, a3",
    "shl a1, a2, 16",
    "shr b1, b2, 31",
    "shru a4, a5, 1",
    "sadd a1, a2, a3",
    "ssub b1, b2, b3",
    "sshl a1, a2, 16",
    "abs a1, b2",
    "mv b1, a1",
    "mvk a1, 12345",
    "mvkh a1, 65535",
    "addk b2, 100",
    "mpy a4, a5, b6",
    "mpyh b4, b5, a6",
    "ldw a5, a4, 16383",
    "stw b5, b4, 100",
    "b 8000",
    "bnz a1, 4095",
    "bz b2, 0",
    "halt",
]


def roundtrip(tools, line):
    """assemble -> disassemble -> assemble must be a fixed point."""
    program = tools.assembler.assemble_text(line)
    (segment,) = program.segments_in(
        tools.model.config.program_memory
    )
    word = segment.words[0]
    text = tools.disassembler.disassemble_word(word)
    program2 = tools.assembler.assemble_text(text)
    (segment2,) = program2.segments_in(
        tools.model.config.program_memory
    )
    return word, segment2.words[0], text


class TestRoundTrips:
    @pytest.mark.parametrize("line", LINES_TINYDSP)
    def test_tinydsp(self, tinydsp_tools, line):
        word, word2, text = roundtrip(tinydsp_tools, line)
        assert word == word2, "%r -> %r" % (line, text)

    @pytest.mark.parametrize("line", LINES_C54X)
    def test_c54x(self, c54x_tools, line):
        word, word2, text = roundtrip(c54x_tools, line)
        assert word == word2, "%r -> %r" % (line, text)

    @pytest.mark.parametrize("line", LINES_C62X)
    def test_c62x(self, c62x_tools, line):
        word, word2, text = roundtrip(c62x_tools, line)
        assert word == word2, "%r -> %r" % (line, text)


class TestRendering:
    def test_variant_mnemonic_follows_mode_bit(self, testmodel_tools):
        asm = testmodel_tools.assembler
        disasm = testmodel_tools.disassembler
        word_add = asm.assemble_text("add r1, r2, r3").segments[0].words[0]
        word_addl = asm.assemble_text("addl r1, r2, r3").segments[0].words[0]
        assert disasm.disassemble_word(word_add).startswith("add ")
        assert disasm.disassemble_word(word_addl).startswith("addl ")

    def test_postmodify_spacing(self, c54x_tools):
        word = c54x_tools.assembler.assemble_text(
            "mac *ar2+, a"
        ).segments[0].words[0]
        assert c54x_tools.disassembler.disassemble_word(word) \
            == "mac *ar2+, a"

    def test_register_fusion(self, c62x_tools):
        word = c62x_tools.assembler.assemble_text(
            "add a1, a2, b3"
        ).segments[0].words[0]
        assert c62x_tools.disassembler.disassemble_word(word) \
            == "add a1, a2, b3"

    def test_program_listing_marks_parallel(self, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || mvk a2, 2
        halt
""")
        lines = c62x_tools.disassembler.disassemble_program(program)
        assert "||" not in lines[0]
        assert "||" in lines[1]
        assert "||" not in lines[2]

    def test_undecodable_word_listed_as_data(self, testmodel_tools):
        from repro.tools.objfile import Program

        program = Program()
        program.add_segment("pmem", 0, [0b0_0110_000_00000000])
        lines = testmodel_tools.disassembler.disassemble_program(program)
        assert ".word" in lines[0]

    def test_helper_without_syntax_rejected(self, testmodel,
                                            testmodel_tools):
        from repro.coding.decoder import DecodedNode
        from repro.support.errors import ReproError

        node = DecodedNode(operation=testmodel.operations["nop"])
        # nop decodes fine but a bare helper like note_store cannot even
        # resolve its variant without a parent; both must raise cleanly.
        helper = DecodedNode(operation=testmodel.operations["note_store"])
        with pytest.raises(ReproError):
            testmodel_tools.disassembler.render(helper)
        assert testmodel_tools.disassembler.render(node) == "nop"
