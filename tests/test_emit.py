"""Tests for the standalone simulator-module emitter."""

import pytest

from repro.machine.control import PipelineControl
from repro.machine.driver import Pipeline
from repro.machine.state import ProcessorState
from repro.sim import create_simulator
from repro.simcc.emit import emit_simulator_module


@pytest.fixture(scope="module")
def program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text("""
start:  ldi r1, 21
        add r2, r1, r1
        st r2, 7
        halt
""", name="emitted")


@pytest.fixture(scope="module")
def emitted_module(testmodel, program):
    source = emit_simulator_module(testmodel, program)
    namespace = {"__name__": "emitted_sim"}
    exec(compile(source, "<emitted>", "exec"), namespace)
    return source, namespace


class TestEmittedSource:
    def test_contains_generated_functions(self, emitted_module):
        source, namespace = emitted_module
        assert "def insn_0_stage_2" in source
        assert "TABLE_SPEC" in source
        assert "def build(state, control):" in source

    def test_constant_folded_operands(self, emitted_module):
        source, _ = emitted_module
        # ldi r1, 21 with sext folded at generation time would still
        # reference the literal 21 in the generated behaviour.
        assert "21" in source

    def test_program_embedded(self, emitted_module, program):
        _, namespace = emitted_module
        embedded = namespace["PROGRAM"]
        assert embedded.entry == program.entry
        assert embedded.to_dict() == program.to_dict()


class TestEmittedExecution:
    def test_matches_compiled_simulator(self, testmodel, program,
                                        emitted_module):
        _, namespace = emitted_module
        state = ProcessorState(testmodel)
        control = PipelineControl()
        namespace["PROGRAM"].load_into(state)
        frontend = namespace["make_frontend"](state, control)
        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.run(1000)

        reference = create_simulator(testmodel, "compiled")
        reference.load_program(program)
        reference.run()

        assert state.differences(reference.state) == []
        assert pipe.cycles == reference.cycles

    def test_emitted_for_vliw_model(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 5
     || mvk a2, 6
        add a3, a1, a2
        halt
""", name="vliw_emit")
        source = emit_simulator_module(c62x, program)
        namespace = {}
        exec(compile(source, "<emitted62>", "exec"), namespace)
        state = ProcessorState(c62x)
        control = PipelineControl()
        namespace["PROGRAM"].load_into(state)
        frontend = namespace["make_frontend"](state, control)
        pipe = Pipeline(c62x, state, control, frontend)
        pipe.run(1000)
        assert state.A[3] == 11
