"""Every shipped example must run to completion (they self-verify)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

EXAMPLES = [
    "quickstart.py",
    "retarget_new_dsp.py",
    "adpcm_codec.py",
    "pipeline_trace.py",
    "emit_standalone_simulator.py",
    "fir_on_c62x.py",
    "cosim_stream.py",
    "kernel_compiler.py",
]


def load_module(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    name = "example_" + filename[:-3]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename, capsys):
    module = load_module(filename)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_examples_list_is_complete():
    on_disk = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert on_disk == sorted(EXAMPLES)
