"""Cross-backend and pass tests for the SimIR layer.

The tentpole guarantee of the IR refactor: the in-process exec backend
(``PythonExecBackend``) and the standalone module emitter
(``ModuleBackend``) consume the *same* lowered, post-pass IR, so they
are bit-identical by construction.  These tests check the construction:

* every supported application x model pair runs to identical
  architectural state and cycle counts on both backends,
* the optimisation passes fire where they should (and only there) --
  including dead-write elimination inside a fused static column,
* IR functions survive the payload round-trip the cache depends on,
* a cache entry written under a different format version is a clean
  miss, not an error,
* ``--dump-ir`` / ``Toolset.dump_ir`` render the post-pass IR.

The native C backend (``backend="native"``) extends the same guarantee
to a third consumer of the lowered IR: compiled burst kernels must be
bit-identical to both Python backends over the full matrix, fall back
cleanly when no toolchain exists, and round-trip checkpoints against
the Python engines.
"""

from __future__ import annotations

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm
from repro.bench import load_app_program
from repro.lisa.semantics import compile_source
from repro.machine.control import PipelineControl
from repro.machine.driver import Pipeline
from repro.machine.state import ProcessorState
from repro.sim import create_simulator
from repro.simcc import ir
from repro.simcc.emit import emit_simulator_module
from repro.simcc.native import NativePipeline, native_available


# -- the app x model cross-backend matrix ------------------------------------

# Every application on every model that can host it: the FIR generator
# targets all three shipped models; the ADPCM and GSM workloads are
# c62x-only (their builders raise for other models).
APP_MATRIX = [
    ("fir-c62x", lambda: build_fir("c62x", taps=4, samples=8)),
    ("fir-c54x", lambda: build_fir("c54x", taps=4, samples=8)),
    ("fir-tinydsp", lambda: build_fir("tinydsp", taps=4, samples=8)),
    ("adpcm-c62x", lambda: build_adpcm(samples=16)),
    ("gsm-c62x", lambda: build_gsm(target_words=1024)),
]


def _run_module_backend(model, program, max_cycles=10_000_000):
    """Execute ``program`` through an emitted standalone module."""
    source = emit_simulator_module(model, program, level="instantiated")
    namespace = {"__name__": "simir_emitted"}
    exec(compile(source, "<simir-emitted>", "exec"), namespace)
    state = ProcessorState(model)
    control = PipelineControl()
    namespace["PROGRAM"].load_into(state)
    frontend = namespace["make_frontend"](state, control)
    pipe = Pipeline(model, state, control, frontend)
    pipe.run(max_cycles)
    return state, pipe.cycles


@pytest.mark.parametrize(
    "builder", [entry[1] for entry in APP_MATRIX],
    ids=[entry[0] for entry in APP_MATRIX],
)
class TestCrossBackendBitExactness:
    """Exec backend vs emitted module, over the full app matrix."""

    def test_state_and_cycles_identical(self, builder):
        app = builder()
        model, program = load_app_program(app)

        reference = create_simulator(model, "unfolded")
        reference.load_program(program)
        reference.run()
        app.verify(reference.state)  # golden-model check on the reference

        state, cycles = _run_module_backend(model, program)

        assert state.differences(reference.state) == []
        assert cycles == reference.cycles
        app.verify(state)

    def test_column_fusion_matches_dynamic(self, builder):
        """Level-3 static column fusion is also IR-driven; it must not
        change results either."""
        app = builder()
        model, program = load_app_program(app)

        reference = create_simulator(model, "unfolded")
        reference.load_program(program)
        reference.run()

        fused = create_simulator(model, "unfolded_static")
        fused.load_program(program)
        fused.run()

        assert fused.state.differences(reference.state) == []
        assert fused.cycles == reference.cycles


# -- column dead-write elimination -------------------------------------------

# A model crafted so that an older instruction's write-back (WB) to ACC
# lands in the same cycle as a younger instruction's execute-stage (EX)
# write to ACC.  The hazard boundary ``s_old == d + s_young`` (3 == 1+2)
# is proven hazard-free, the column composes statically, and -- because
# fused columns run oldest instruction first -- the older write is dead.
DCE_MODEL_SOURCE = r"""
MODEL dcemodel;
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int16 ACC;
    MEMORY uint16 pmem[256];
    PIPELINE pipe = { FE; DE; EX; WB };
}
CONFIG {
    WORDSIZE(16);
    PROGRAM_MEMORY(pmem);
    ROOT(insn);
    EXECUTE_STAGE(EX);
    BRANCH_POLICY(flush);
}

OPERATION seta IN pipe.EX {
    CODING { 0b0001 0b00000000000 }
    SYNTAX { "seta" }
    BEHAVIOR { }
    ACTIVATION { seta_wb }
}

OPERATION seta_wb IN pipe.WB {
    BEHAVIOR { ACC = 1; }
}

OPERATION setb IN pipe.EX {
    CODING { 0b0010 0b00000000000 }
    SYNTAX { "setb" }
    BEHAVIOR { ACC = 2; }
}

OPERATION halt_op IN pipe.EX {
    CODING { 0b0101 0b00000000000 }
    SYNTAX { "halt" }
    BEHAVIOR { halt(); }
}

OPERATION nop IN pipe.EX {
    CODING { 0b0000 0b00000000000 }
    SYNTAX { "nop" }
    BEHAVIOR { }
}

OPERATION insn {
    DECLARE { GROUP op = { nop || seta || setb || halt_op }; LABEL mode; }
    CODING { mode[1] op }
    SYNTAX { op }
    ACTIVATION { op }
}
"""

DCE_PROGRAM = """
start:  seta
        setb
        nop
        nop
        nop
        nop
        halt
"""


class TestColumnDeadWriteElimination:
    @pytest.fixture(scope="class")
    def dce_model(self):
        return compile_source(DCE_MODEL_SOURCE, "dcemodel.lisa")

    @pytest.fixture(scope="class")
    def dce_program(self, dce_model):
        from repro.api import build_toolset

        return build_toolset(dce_model).assembler.assemble_text(
            DCE_PROGRAM, name="dce"
        )

    def test_dead_write_removed_in_fused_column(self, dce_model,
                                                dce_program):
        sim = create_simulator(dce_model, "unfolded_static")
        sim.load_program(dce_program)
        sim.run()
        # The cycle with seta in WB and setb in EX fused into one
        # column; seta's ACC write is superseded within the column.
        assert sim.column_stats.get("dead_writes_removed", 0) > 0
        assert sim.state.ACC == 2

    def test_fusion_preserves_results(self, dce_model, dce_program):
        reference = create_simulator(dce_model, "unfolded")
        reference.load_program(dce_program)
        reference.run()

        fused = create_simulator(dce_model, "unfolded_static")
        fused.load_program(dce_program)
        fused.run()

        assert fused.state.differences(reference.state) == []
        assert fused.cycles == reference.cycles

    def test_optimize_column_drops_superseded_write(self, testmodel):
        """Unit-level: two same-cell writes in one column, the earlier
        one (older instruction) is eliminated; distinct cells survive."""
        ops = (
            ir.WriteReg("ACC", ir.Const(1), width=16, signed=True),
            ir.WriteReg("ACC", ir.Const(2), width=16, signed=True),
            ir.WriteElem("R", ir.Const(0), ir.Const(3),
                         width=32, signed=True),
        )
        stats = ir.PassStats()
        func = ir.optimize_column("column_t", list(ops), testmodel,
                                  stats=stats)
        assert stats.get("dead_writes_removed", 0) == 1
        writes = [op for op in func.ops
                  if isinstance(op, (ir.WriteReg, ir.WriteElem))]
        assert len(writes) == 2
        assert {ir.write_cell(op)[0] for op in writes} == {"ACC", "R"}
        # The surviving ACC write is the younger instruction's.
        acc = next(op for op in writes if isinstance(op, ir.WriteReg))
        assert acc.value == ir.Const(2)


# -- pass unit tests ----------------------------------------------------------


class TestPasses:
    def _run(self, ops, model):
        func = ir.IRFunction(name="t", ops=list(ops))
        stats = ir.PassStats()
        func = ir.run_passes(func, model, stats=stats)
        return func, stats

    def test_constant_folding_folds_arithmetic(self, testmodel):
        func, stats = self._run(
            [ir.WriteLocal("x", ir.Alu("+", ir.Const(2), ir.Const(3))),
             ir.WriteReg("ACC", ir.ReadLocal("x"), width=16, signed=True)],
            testmodel,
        )
        assert stats.get("const_folds", 0) > 0
        local = next(op for op in func.ops
                     if isinstance(op, ir.WriteLocal))
        assert local.value == ir.Const(5)

    def test_constant_folding_preserves_traps(self, testmodel):
        """Division by a constant zero must stay a run-time trap."""
        func, _ = self._run(
            [ir.WriteReg(
                "ACC", ir.Alu("/", ir.Const(1), ir.Const(0)),
                width=16, signed=True,
            )],
            testmodel,
        )
        (write,) = func.ops
        assert not isinstance(write.value, ir.Const)

    def test_coalesce_canonicalisation_on_const(self, testmodel):
        """A constant store is canonicalised at compile time: the write
        becomes raw (width=None) with the wrapped value."""
        func, _ = self._run(
            [ir.WriteReg("ACC", ir.Const(0xFFFF), width=16, signed=True)],
            testmodel,
        )
        (write,) = func.ops
        assert write.width is None
        assert isinstance(write.value, ir.Const)
        assert write.value.value == -1

    def test_dead_local_write_eliminated(self, testmodel):
        func, stats = self._run(
            [ir.WriteLocal("unused", ir.Const(7)),
             ir.WriteReg("ACC", ir.Const(1), width=16, signed=True)],
            testmodel,
        )
        assert stats.get("dead_writes_removed", 0) >= 1
        assert not any(
            isinstance(op, ir.WriteLocal) for op in func.ops
        )

    def test_helper_hoisting(self, testmodel):
        func, _ = self._run(
            [ir.WriteReg(
                "ACC",
                ir.Alu("/", ir.ReadReg("ACC"), ir.Const(3)),
                width=16, signed=True,
            )],
            testmodel,
        )
        assert "__idiv" in func.helpers
        source = ir.render_function_source(func)
        assert "__idiv" in source


# -- IR payload round-trip ----------------------------------------------------


class TestPayloadRoundTrip:
    def test_function_payload_round_trip(self, testmodel, testmodel_tools):
        from repro.simcc.portable import build_portable_table

        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 21
        add r2, r1, r1
        st r2, 7
        halt
        """)
        portable = build_portable_table(testmodel, program,
                                        level="instantiated")
        assert portable.functions
        for func in portable.functions:
            clone = ir.function_from_payload(ir.function_to_payload(func))
            assert clone == func
            assert (ir.render_function_source(clone)
                    == ir.render_function_source(func))

    def test_marshal_compatible(self, testmodel, testmodel_tools):
        """Payloads must survive ``marshal`` (the cache's format)."""
        import marshal

        from repro.simcc.portable import build_portable_table

        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 3
        halt
        """)
        portable = build_portable_table(testmodel, program,
                                        level="instantiated")
        for func in portable.functions:
            payload = ir.function_to_payload(func)
            assert marshal.loads(marshal.dumps(payload)) == payload


# -- cache format versioning --------------------------------------------------


class TestCacheFormatVersion:
    def test_older_format_entry_is_clean_miss(self, testmodel,
                                              testmodel_tools, tmp_path):
        """An entry whose payload says format 2 (e.g. written by an
        older build into this version's namespace) is a miss -- not an
        exception, and not quarantined as corruption."""
        import marshal
        import os

        from repro.simcc.cache import (
            SimulationCache, _MAGIC, table_digest,
        )

        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 5
        halt
        """)
        cache = SimulationCache(tmp_path / "simtab")
        sim = create_simulator(testmodel, "unfolded", cache=cache)
        sim.load_program(program)
        sim.run()
        assert cache.stats["stores"] == 1

        digest = table_digest(testmodel, program, "instantiated")
        path = cache.entry_path(digest)
        with open(path, "rb") as handle:
            blob = handle.read()
        payload = marshal.loads(blob[len(_MAGIC):])
        payload["meta"]["format"] = 2
        with open(path, "wb") as handle:
            handle.write(_MAGIC + marshal.dumps(payload))

        reopened = SimulationCache(cache.root)
        assert reopened.load_portable(
            testmodel, program, "instantiated"
        ) is None
        assert reopened.stats["misses"] == 1
        assert reopened.stats["corrupt_entries"] == 0
        assert os.path.exists(path)  # left alone, not quarantined

        # And a full reload recompiles and runs identically.
        fresh = create_simulator(testmodel, "unfolded", cache=reopened)
        fresh.load_program(program)
        fresh.run()
        assert fresh.state.differences(sim.state) == []


# -- native C backend ---------------------------------------------------------

# Bit-exactness needs the host toolchain; the fallback tests need its
# absence (``CC=""`` is the toolchain discovery's explicit disable).
needs_cc = pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on the host"
)


@needs_cc
@pytest.mark.parametrize(
    "builder", [entry[1] for entry in APP_MATRIX],
    ids=[entry[0] for entry in APP_MATRIX],
)
def test_native_backend_matches_reference(builder):
    """Native bursts vs the exec backend, over the full app matrix."""
    app = builder()
    model, program = load_app_program(app)

    reference = create_simulator(model, "unfolded")
    reference.load_program(program)
    reference.run()
    app.verify(reference.state)

    native = create_simulator(model, "unfolded_static", backend="native")
    native.load_program(program)
    native.run()

    assert isinstance(native.engine, NativePipeline)
    assert native.state.differences(reference.state) == []
    assert native.cycles == reference.cycles
    app.verify(native.state)
    counts = native.engine.dispatch_counts
    assert counts["bursts"] > 0
    assert counts["native_cycles"] > 0


@needs_cc
@pytest.mark.parametrize(
    "kind", ["compiled", "static", "unfolded", "unfolded_static"]
)
def test_native_backend_all_table_kinds(kind):
    """Every table-based kind can host the native engine."""
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    reference = create_simulator(model, kind)
    reference.load_program(program)
    reference.run()

    native = create_simulator(model, kind, backend="native")
    native.load_program(program)
    native.run()

    assert native.state.differences(reference.state) == []
    assert native.cycles == reference.cycles
    assert native.engine.dispatch_counts["bursts"] > 0


@needs_cc
def test_native_checkpoint_round_trips_both_directions():
    """A checkpoint taken mid-burst restores onto the Python engine and
    vice versa, finishing bit-identically to a straight-through run."""
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    straight = create_simulator(model, "unfolded_static", backend="native")
    straight.load_program(program)
    straight.run()

    for head_backend, tail_backend in (("native", "auto"),
                                       ("auto", "native")):
        head = create_simulator(model, "unfolded_static",
                                backend=head_backend)
        head.load_program(program)
        head.engine.run_chunk(250)
        snapshot = head.checkpoint()

        tail = create_simulator(model, "unfolded_static",
                                backend=tail_backend)
        tail.load_program(program)
        tail.restore(snapshot)
        tail.run()

        assert tail.state.differences(straight.state) == []
        assert tail.cycles == straight.cycles
        if tail_backend == "native":
            # Bursts must resume after a restore, not just survive it.
            assert tail.engine.dispatch_counts["native_cycles"] > 0


class TestNativeBackendFallback:
    """Degradation must be silent, observable and bit-exact."""

    def test_no_toolchain_is_clean_fallback(self, monkeypatch):
        from repro import obs

        monkeypatch.setenv("CC", "")  # explicit toolchain disable
        assert not native_available()

        app = build_fir("tinydsp", taps=4, samples=8)
        model, program = load_app_program(app)

        reference = create_simulator(model, "unfolded_static")
        reference.load_program(program)
        reference.run()

        sink = obs.ListSink()
        sim = create_simulator(model, "unfolded_static", backend="native",
                               observer=obs.Observer(sinks=(sink,)))
        sim.load_program(program)
        sim.run()

        # Unwrapped engine, identical results, exactly one warning event.
        assert not isinstance(sim.engine, NativePipeline)
        assert sim.state.differences(reference.state) == []
        assert sim.cycles == reference.cycles
        fallbacks = [event for event in sink.events
                     if event.kind == obs.NATIVE_FALLBACK]
        assert len(fallbacks) == 1
        assert "no C compiler" in fallbacks[0].args["reason"]

    def test_backend_validation(self, testmodel):
        from repro.support.errors import ReproError

        with pytest.raises(ReproError, match="unknown simulation backend"):
            create_simulator(testmodel, "unfolded", backend="jit")
        with pytest.raises(ReproError, match="table-based"):
            create_simulator(testmodel, "interpretive", backend="native")


class TestDumpC:
    def test_cli_dump_c(self, tmp_path, capsys):
        from repro.cli import sim_main

        app = build_fir("tinydsp", taps=4, samples=8)
        asm = tmp_path / "fir.asm"
        asm.write_text(app.source)
        rc = sim_main(["tinydsp", str(asm), "--dump-c"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "native rendering" in out
        assert "/* pc=0x" in out
        # Dump replaces simulation: no run summary is printed.
        assert "halted" not in out


# -- IR dump ------------------------------------------------------------------


class TestDumpIR:
    def test_toolset_dump_ir(self, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 21
        add r2, r1, r1
        st r2, 7
        halt
        """, name="dumped")
        text = testmodel_tools.dump_ir(program)
        assert "SimIR dump" in text
        assert "packet 0x" in text
        assert "insn_0_stage_2" in text
        # ldi's sign-extended immediate folded to a constant store.
        assert "21" in text

    def test_cli_dump_ir(self, tmp_path, capsys):
        from repro.apps import build_fir
        from repro.cli import sim_main

        app = build_fir("tinydsp", taps=4, samples=8)
        asm = tmp_path / "fir.asm"
        asm.write_text(app.source)
        rc = sim_main(["tinydsp", str(asm), "--dump-ir"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SimIR dump" in out
        assert "packet 0x" in out
        # Dump replaces simulation: no run summary is printed.
        assert "halted" not in out
