"""Tests for the retargetable kernel compiler.

Every compiled kernel is run on the real simulator stack (assembler ->
compiled simulator) and the resulting data memory is compared against
the independent reference interpreter -- compiler, assembler, decoder,
scheduler and simulator all have to agree for these to pass.
"""

import pytest

from repro.api import build_toolset
from repro.kcc import compile_kernel, evaluate_kernel, parse_kernel
from repro.kcc.frontend import KernelError
from repro.models import load_model
from repro.sim import create_simulator

SCALE_KERNEL = """
array x[8] @ 0;
array y[8] @ 8;
int i = 0;
int t;
while (i != 8) {
    t = x[i] * 3;
    y[i] = t + 100;
    i = i + 1;
}
"""

FIB_KERNEL = """
array out[10] @ 16;
int a = 0;
int b = 1;
int i = 0;
int t;
while (i != 10) {
    out[i] = a;
    t = a + b;
    a = b;
    b = t;
    i = i + 1;
}
"""

BRANCHY_KERNEL = """
array x[6] @ 0;
array y[6] @ 8;
int i = 0;
int v;
while (i != 6) {
    v = x[i];
    if (v & 1) {
        y[i] = v + v;
    } else {
        y[i] = 0 - v;
    }
    i = i + 1;
}
"""

NESTED_KERNEL = """
array table[16] @ 32;
int i = 0;
int j;
int idx = 0;
while (i != 4) {
    j = 0;
    while (j != 4) {
        table[idx] = (i + 1) * (j + 1);
        idx = idx + 1;
        j = j + 1;
    }
    i = i + 1;
}
"""

C62X_COMPARE_KERNEL = """
array x[8] @ 0;
array flags[8] @ 8;
int i = 0;
while (i != 8) {
    flags[i] = (x[i] > 3) + ((x[i] <= 1) << 1);
    i = i + 1;
}
"""


def run_on_target(source, target_name, preload=None, kind="compiled"):
    """Compile, assemble, simulate; returns (state, golden_memory)."""
    program = parse_kernel(source)
    assembly = compile_kernel(program, target_name)
    model = load_model(target_name)
    tools = build_toolset(model)
    obj = tools.assembler.assemble_text(assembly, name="kernel")
    simulator = create_simulator(model, kind)
    simulator.load_program(obj)
    golden_memory = [0] * len(simulator.state.dmem)
    for address, value in (preload or {}).items():
        simulator.state.write_memory("dmem", address, value)
        golden_memory[address] = value
    evaluate_kernel(program, golden_memory)
    simulator.run(max_cycles=5_000_000)
    return simulator.state, golden_memory


def check_arrays(source, target_name, preload=None):
    program = parse_kernel(source)
    state, golden = run_on_target(source, target_name, preload)
    for array in program.arrays.values():
        actual = state.dmem[array.base : array.base + array.size]
        expected = golden[array.base : array.base + array.size]
        assert actual == expected, (
            "%s on %s: %r != %r" % (array.name, target_name, actual,
                                    expected)
        )


PRELOAD_X8 = {i: v for i, v in enumerate([5, -2, 9, 0, 13, -7, 1, 4])}
PRELOAD_X6 = {i: v for i, v in enumerate([5, -2, 9, 0, 13, -8])}


class TestKernelsOnTinydsp:
    def test_scale(self):
        check_arrays(SCALE_KERNEL, "tinydsp", PRELOAD_X8)

    def test_fibonacci(self):
        check_arrays(FIB_KERNEL, "tinydsp")

    def test_branchy(self):
        check_arrays(BRANCHY_KERNEL, "tinydsp", PRELOAD_X6)

    def test_nested_loops(self):
        check_arrays(NESTED_KERNEL, "tinydsp")

    def test_large_constants_built_from_chunks(self):
        source = """
array out[2] @ 0;
int big = 100000;
out[0] = big;
out[1] = big * 3;
"""
        check_arrays(source, "tinydsp")

    def test_long_shift_decomposed(self):
        source = """
array out[2] @ 0;
int v = 3;
out[0] = v << 20;
out[1] = (0 - 4096) >> 9;
"""
        check_arrays(source, "tinydsp")


class TestKernelsOnC62x:
    def test_scale(self):
        check_arrays(SCALE_KERNEL, "c62x", PRELOAD_X8)

    def test_fibonacci(self):
        check_arrays(FIB_KERNEL, "c62x")

    def test_branchy(self):
        check_arrays(BRANCHY_KERNEL, "c62x", PRELOAD_X6)

    def test_nested_loops(self):
        check_arrays(NESTED_KERNEL, "c62x")

    def test_value_comparisons(self):
        check_arrays(C62X_COMPARE_KERNEL, "c62x", PRELOAD_X8)

    def test_32_bit_constants(self):
        source = """
array out[2] @ 0;
int big = 1000000;
out[0] = big + big;
out[1] = 0 - big;
"""
        check_arrays(source, "c62x")

    def test_same_result_on_both_targets(self):
        tiny_state, _ = run_on_target(SCALE_KERNEL, "tinydsp", PRELOAD_X8)
        c62x_state, _ = run_on_target(SCALE_KERNEL, "c62x", PRELOAD_X8)
        assert tiny_state.dmem[8:16] == c62x_state.dmem[8:16]


class TestReferenceInterpreter:
    def test_compound_assign_and_division(self):
        program = parse_kernel("""
array out[3] @ 0;
int a = 17;
a /= 5;
out[0] = a;
out[1] = 17 % 5;
out[2] = -17 / 5;
""")
        memory = [0] * 8
        evaluate_kernel(program, memory)
        assert memory[:3] == [3, 2, -3]  # C semantics

    def test_bounds_checked(self):
        program = parse_kernel("array x[4] @ 0;\nx[9] = 1;\n")
        with pytest.raises(KernelError):
            evaluate_kernel(program, [0] * 16)

    def test_wrap32(self):
        program = parse_kernel("""
array out[1] @ 0;
int v = 2147483647;
out[0] = v + 1;
""")
        memory = [0] * 4
        evaluate_kernel(program, memory)
        assert memory[0] == -2147483648


class TestFrontEndErrors:
    def test_undeclared_variable(self):
        with pytest.raises(KernelError):
            parse_kernel("x = 1;")

    def test_array_without_index(self):
        with pytest.raises(KernelError):
            parse_kernel("array a[4] @ 0;\nint x;\nx = a;\n")

    def test_unknown_array(self):
        with pytest.raises(KernelError):
            parse_kernel("int x;\nx = nothere[0];\n")

    def test_calls_rejected(self):
        with pytest.raises(KernelError):
            parse_kernel("int x;\nx = sext(1, 2);\n")

    def test_duplicate_array(self):
        with pytest.raises(KernelError):
            parse_kernel("array a[4] @ 0;\narray a[4] @ 8;\n")

    def test_duplicate_variable(self):
        with pytest.raises(KernelError):
            parse_kernel("int x;\nint x;\n")


class TestBackendErrors:
    def test_too_many_variables_for_tinydsp(self):
        source = "\n".join("int v%d;" % i for i in range(5))
        with pytest.raises(KernelError):
            compile_kernel(source, "tinydsp")

    def test_value_comparison_rejected_on_tinydsp(self):
        with pytest.raises(KernelError):
            compile_kernel("int x;\nint y;\ny = x < 3;\n", "tinydsp")

    def test_variable_shift_rejected(self):
        with pytest.raises(KernelError):
            compile_kernel("int x;\nint y;\ny = x << x;\n", "c62x")

    def test_division_rejected(self):
        with pytest.raises(KernelError):
            compile_kernel("int x;\nint y;\ny = x / 3;\n", "c62x")

    def test_unknown_target(self):
        with pytest.raises(KernelError):
            compile_kernel("int x;", "vax")

    def test_equality_conditions_work_on_tinydsp(self):
        # ==/!= conditions are the supported tinydsp comparison forms.
        check_arrays("""
array out[2] @ 0;
int i = 3;
if (i == 3) { out[0] = 1; }
if (i != 3) { out[1] = 1; } else { out[1] = 2; }
""", "tinydsp")
