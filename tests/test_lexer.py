"""Tests for the shared tokenizer."""

import pytest

from repro.lisa.lexer import tokenize
from repro.support.bitutils import BitPattern
from repro.support.errors import LisaSyntaxError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers(self):
        tokens = tokenize("foo _bar Baz9")
        assert [t.text for t in tokens[:3]] == ["foo", "_bar", "Baz9"]
        assert all(t.kind == "ident" for t in tokens[:3])

    def test_decimal_integers(self):
        tokens = tokenize("0 7 1234")
        assert [t.value for t in tokens[:3]] == [0, 7, 1234]

    def test_hex_integers(self):
        tokens = tokenize("0x0 0xff 0XAB")
        assert [t.value for t in tokens[:3]] == [0, 255, 0xAB]

    def test_binary_integers(self):
        token = tokenize("0b0101")[0]
        assert token.kind == "int"
        assert token.value == 5
        assert token.text == "0b0101"  # width recoverable from spelling

    def test_binary_with_dont_cares_is_bits(self):
        token = tokenize("0b01x1")[0]
        assert token.kind == "bits"
        assert isinstance(token.value, BitPattern)
        assert token.value.width == 4

    def test_strings(self):
        token = tokenize('"hello world"')[0]
        assert token.kind == "string"
        assert token.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\t\"q\\"')[0].value == 'a\nb\t"q\\'

    def test_eof_is_final(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"


class TestPunctuation:
    def test_multi_char_operators_longest_first(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a || b && c") == ["a", "||", "b", "&&", "c"]
        assert texts("a<=b>=c==d!=e") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e",
        ]

    def test_braces_and_brackets(self):
        assert texts("{ } ( ) [ ] ; , :") == [
            "{", "}", "(", ")", "[", "]", ";", ",", ":",
        ]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LisaSyntaxError):
            tokenize("a /* never ends")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd", filename="f.lisa")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3
        assert tokens[1].location.filename == "f.lisa"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LisaSyntaxError):
            tokenize('"abc')

    def test_string_may_not_span_lines(self):
        with pytest.raises(LisaSyntaxError):
            tokenize('"abc\ndef"')

    def test_bad_escape(self):
        with pytest.raises(LisaSyntaxError):
            tokenize(r'"\q"')

    def test_incomplete_hex(self):
        with pytest.raises(LisaSyntaxError):
            tokenize("0x")

    def test_incomplete_binary(self):
        with pytest.raises(LisaSyntaxError):
            tokenize("0b")

    def test_number_glued_to_letters(self):
        with pytest.raises(LisaSyntaxError):
            tokenize("12abc")

    def test_unknown_character(self):
        with pytest.raises(LisaSyntaxError):
            tokenize("a $ b")


class TestTokenHelpers:
    def test_is_punct(self):
        token = tokenize(",")[0]
        assert token.is_punct(",")
        assert not token.is_punct(";")

    def test_is_ident(self):
        token = tokenize("OPERATION")[0]
        assert token.is_ident()
        assert token.is_ident("OPERATION")
        assert not token.is_ident("RESOURCE")


class TestEndOfInputRegressions:
    """A hex/binary literal at end of input must terminate (a "" peek
    is a substring of every string -- regression for an infinite loop)."""

    def test_hex_at_eof(self):
        assert tokenize("0x10")[0].value == 16

    def test_binary_at_eof(self):
        assert tokenize("0b101")[0].value == 5

    def test_bits_at_eof(self):
        assert tokenize("0b1x")[0].kind == "bits"

    def test_decimal_at_eof(self):
        assert tokenize("7")[0].value == 7
