"""Tests for the VLIW packet linter and the IR diagnostic codes."""

import json

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm
from repro.tools.lint import lint_vliw_packets, written_cells


class TestWrittenCells:
    def test_alu_write_is_element_precise(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "add a3, a1, a2", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert cells == {("A", "3")}

    def test_load_writes_queue_and_destination(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "ldw b5, a4, 0", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert ("B", "5") in cells
        assert ("lsq", "0") in cells  # the in-flight address queue

    def test_store_is_memory_wildcard(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "stw a1, a4, 2", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert ("dmem", "*") in cells


class TestPacketLint:
    def test_parallel_loads_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        ldw a5, a4, 0
     || ldw b5, b4, 0
        halt
""")
        assert len(program.lint_warnings) >= 1
        assert "lsq" in program.lint_warnings[0]

    def test_parallel_same_destination_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || addk a1, 2
        halt
""")
        assert any("A[1]" in w for w in program.lint_warnings)

    def test_clean_packet_not_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || mvk a2, 2
     || mvk b1, 3
        halt
""")
        assert program.lint_warnings == []

    def test_parallel_stores_flagged_as_wildcard(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        stw a1, a4, 0
     || stw a2, b4, 0
        halt
""")
        assert any("dmem" in w for w in program.lint_warnings)

    def test_scalar_model_always_clean(self, tinydsp, tinydsp_tools):
        program = tinydsp_tools.assembler.assemble_text("nop\nhalt\n")
        assert lint_vliw_packets(tinydsp, program) == []
        assert program.lint_warnings == []

    def test_lint_can_be_disabled(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        ldw a5, a4, 0
     || ldw b5, b4, 0
        halt
""", lint=False)
        assert program.lint_warnings == []


# A testmodel variant with a ``bad`` instruction whose behaviour stores
# to a constant out-of-range data-memory index: the abstract interpreter
# proves the store always faults, so linting a program that uses it
# exercises the ``ir.trap`` (IR002) diagnostic end to end.
def _trap_capable_source():
    from tests.conftest import TESTMODEL_SOURCE

    return TESTMODEL_SOURCE.replace(
        "nop || add || ldi || st || brnz",
        "nop || add || ldi || st || bad || brnz",
    ).replace(
        "OPERATION brnz IN pipe.EX {",
        """OPERATION bad IN pipe.EX {
    DECLARE { GROUP src = { reg }; }
    CODING { 0b0110 src 0bxxxxxxxx }
    SYNTAX { "bad" src }
    BEHAVIOR { dmem[100] = src; }
}

OPERATION brnz IN pipe.EX {""",
        1,
    )


class TestDiagnosticCodes:
    """Stable IR-level diagnostic codes (IR001/IR002/IR003)."""

    TRAPPING = """
        ldi r1, 5
        bad r1
        halt
"""
    UNREACHABLE = """
        br 2
        ldi r1, 1
        halt
"""

    @pytest.fixture(scope="class")
    def trap_model(self):
        from repro.lisa.semantics import compile_source

        return compile_source(_trap_capable_source(), "trapmodel.lisa")

    @pytest.fixture(scope="class")
    def trap_tools(self, trap_model):
        from repro.api import build_toolset

        return build_toolset(trap_model)

    def test_provable_trap_gets_ir002(self, trap_model, trap_tools):
        from repro.analysis import analyze_program

        program = trap_tools.assembler.assemble_text(
            self.TRAPPING, name="trapping"
        )
        result = analyze_program(trap_model, program)
        traps = [f for f in result.report if f.check == "ir.trap"]
        assert traps, "expected an ir.trap finding"
        finding = traps[0]
        assert finding.severity == "warning"
        assert finding.code == "IR002"
        assert "outside" in finding.message
        # Warnings fail only under --Werror.
        assert result.report.exit_code() == 0
        assert result.report.exit_code(werror=True) == 1

    def test_unreachable_packet_gets_ir001(self, tinydsp, tinydsp_tools):
        from repro.analysis import analyze_program

        program = tinydsp_tools.assembler.assemble_text(
            self.UNREACHABLE, name="unreachable"
        )
        result = analyze_program(tinydsp, program)
        unreachable = [
            f for f in result.report if f.check == "cfg.unreachable"
        ]
        assert unreachable, "expected a cfg.unreachable finding"
        assert unreachable[0].code == "IR001"
        assert unreachable[0].severity == "note"

    def test_finding_str_includes_code(self, trap_model, trap_tools):
        from repro.analysis import analyze_program

        program = trap_tools.assembler.assemble_text(
            self.TRAPPING, name="trapping"
        )
        result = analyze_program(trap_model, program)
        finding = [f for f in result.report if f.check == "ir.trap"][0]
        text = str(finding)
        assert "[IR002]" in text
        assert text.startswith("0x")
        # Findings without a code keep the legacy two-part rendering.
        from repro.analysis.report import Finding

        plain = Finding("warning", 4, "hazard.raw", "conflict")
        assert "[" not in str(plain)

    def test_codes_emitted_in_json(self, tmp_path, capsys):
        from repro.cli import lint_main

        model_path = tmp_path / "trapmodel.lisa"
        model_path.write_text(_trap_capable_source())
        asm_path = tmp_path / "trapping.asm"
        asm_path.write_text(self.TRAPPING)

        exit_code = lint_main([str(model_path), str(asm_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        codes = {
            finding["check"]: finding["code"]
            for finding in payload["findings"]
        }
        assert codes.get("ir.trap") == "IR002"
        assert all("code" in finding for finding in payload["findings"])

    def test_werror_honours_coded_warnings(self, tmp_path, capsys):
        from repro.cli import lint_main

        model_path = tmp_path / "trapmodel.lisa"
        model_path.write_text(_trap_capable_source())
        asm_path = tmp_path / "trapping.asm"
        asm_path.write_text(self.TRAPPING)

        exit_code = lint_main(
            [str(model_path), str(asm_path), "--json", "--Werror"]
        )
        capsys.readouterr()
        assert exit_code == 1

    def test_clean_program_has_no_coded_findings(
        self, testmodel, testmodel_tools
    ):
        from repro.analysis import analyze_program

        program = testmodel_tools.assembler.assemble_text(
            "ldi r1, 3\nst r1, 7\nhalt\n", name="clean"
        )
        result = analyze_program(testmodel, program)
        assert not [f for f in result.report if f.code]


class TestShippedAppsLintClean:
    """Our own benchmark programs must pass our own linter."""

    def test_fir(self, c62x_tools):
        program = build_fir("c62x", taps=4, samples=8).assemble(c62x_tools)
        assert program.lint_warnings == []

    def test_adpcm(self, c62x_tools):
        program = build_adpcm(samples=8).assemble(c62x_tools)
        assert program.lint_warnings == []

    def test_gsm(self, c62x_tools):
        program = build_gsm(target_words=600).assemble(c62x_tools)
        assert program.lint_warnings == []
