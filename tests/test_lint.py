"""Tests for the VLIW packet linter."""

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm
from repro.tools.lint import lint_vliw_packets, written_cells


class TestWrittenCells:
    def test_alu_write_is_element_precise(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "add a3, a1, a2", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert cells == {("A", "3")}

    def test_load_writes_queue_and_destination(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "ldw b5, a4, 0", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert ("B", "5") in cells
        assert ("lsq", "0") in cells  # the in-flight address queue

    def test_store_is_memory_wildcard(self, c62x, c62x_tools):
        from repro.behavior.codegen import BehaviorCodegen
        from repro.coding.decoder import InstructionDecoder

        word = c62x_tools.assembler.assemble_text(
            "stw a1, a4, 2", lint=False
        ).segments[0].words[0]
        node = InstructionDecoder(c62x).decode(word)
        cells = written_cells(node, c62x, BehaviorCodegen(c62x))
        assert ("dmem", "*") in cells


class TestPacketLint:
    def test_parallel_loads_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        ldw a5, a4, 0
     || ldw b5, b4, 0
        halt
""")
        assert len(program.lint_warnings) >= 1
        assert "lsq" in program.lint_warnings[0]

    def test_parallel_same_destination_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || addk a1, 2
        halt
""")
        assert any("A[1]" in w for w in program.lint_warnings)

    def test_clean_packet_not_flagged(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || mvk a2, 2
     || mvk b1, 3
        halt
""")
        assert program.lint_warnings == []

    def test_parallel_stores_flagged_as_wildcard(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        stw a1, a4, 0
     || stw a2, b4, 0
        halt
""")
        assert any("dmem" in w for w in program.lint_warnings)

    def test_scalar_model_always_clean(self, tinydsp, tinydsp_tools):
        program = tinydsp_tools.assembler.assemble_text("nop\nhalt\n")
        assert lint_vliw_packets(tinydsp, program) == []
        assert program.lint_warnings == []

    def test_lint_can_be_disabled(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        ldw a5, a4, 0
     || ldw b5, b4, 0
        halt
""", lint=False)
        assert program.lint_warnings == []


class TestShippedAppsLintClean:
    """Our own benchmark programs must pass our own linter."""

    def test_fir(self, c62x_tools):
        program = build_fir("c62x", taps=4, samples=8).assemble(c62x_tools)
        assert program.lint_warnings == []

    def test_adpcm(self, c62x_tools):
        program = build_adpcm(samples=8).assemble(c62x_tools)
        assert program.lint_warnings == []

    def test_gsm(self, c62x_tools):
        program = build_gsm(target_words=600).assemble(c62x_tools)
        assert program.lint_warnings == []
