"""Tests for the LISA parser (AST level, no semantic checks)."""

import pytest

from repro.lisa import ast
from repro.lisa.parser import parse_source
from repro.support.errors import LisaSyntaxError

MINIMAL = """
MODEL m;
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    MEMORY uint16 pmem[16];
    PIPELINE p = { A; B };
}
"""


class TestModelStructure:
    def test_model_name(self):
        tree = parse_source(MINIMAL)
        assert tree.name == "m"

    def test_model_header_optional(self):
        tree = parse_source(MINIMAL.replace("MODEL m;\n", ""))
        assert tree.name == "model"

    def test_resources_collected(self):
        tree = parse_source(MINIMAL)
        assert len(tree.resources) == 3

    def test_garbage_at_top_level_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(MINIMAL + "\nBOGUS { }")


class TestResourceItems:
    def test_program_counter(self):
        tree = parse_source(MINIMAL)
        pc = tree.resources[0]
        assert isinstance(pc, ast.ProgramCounterAst)
        assert pc.type_name == "uint32"
        assert pc.name == "PC"

    def test_register_scalar_and_file(self):
        tree = parse_source(
            MINIMAL + "RESOURCE { REGISTER int A; REGISTER int16 R[8]; }"
        )
        scalar = tree.resources[3]
        filed = tree.resources[4]
        assert scalar.count is None
        assert filed.count == 8

    def test_memory(self):
        tree = parse_source(MINIMAL)
        mem = tree.resources[1]
        assert isinstance(mem, ast.MemoryAst)
        assert mem.size == 16

    def test_pipeline_stages(self):
        tree = parse_source(MINIMAL)
        pipe = tree.resources[2]
        assert pipe.stages == ["A", "B"]

    def test_pipeline_trailing_semicolon_ok(self):
        tree = parse_source(
            "RESOURCE { PROGRAM_COUNTER uint32 PC; MEMORY uint16 m[4];"
            " PIPELINE p = { A; B; }; }"
        )
        assert tree.resources[2].stages == ["A", "B"]


class TestConfig:
    def test_config_items(self):
        tree = parse_source(
            MINIMAL + 'CONFIG { WORDSIZE(16); ROOT(insn); DEFINE(X, 3); }'
        )
        keys = [c.key for c in tree.config]
        assert keys == ["WORDSIZE", "ROOT", "DEFINE"]
        assert tree.config[0].args == [16]
        assert tree.config[1].args == ["insn"]
        assert tree.config[2].args == ["X", 3]


def op_source(body):
    return MINIMAL + "\nOPERATION foo {\n%s\n}" % body


class TestOperationSections:
    def test_header_with_stage(self):
        tree = parse_source(
            MINIMAL + "OPERATION foo IN p.B { CODING { 0b1 } }"
        )
        op = tree.operations[0]
        assert op.pipeline == "p"
        assert op.stage == "B"

    def test_declare_items(self):
        tree = parse_source(op_source(
            "DECLARE { GROUP g = { a || b }; INSTANCE i = { c };"
            " LABEL x, y; REFERENCE r; }"
        ))
        declare = tree.operations[0].items[0]
        group, instance, labels, refs = declare.items
        assert group.alternatives == ["a", "b"]
        assert instance.operation == "c"
        assert labels.names == ["x", "y"]
        assert refs.names == ["r"]

    def test_coding_elements(self):
        tree = parse_source(op_source(
            "DECLARE { LABEL x; } CODING { 0b01x1 x[4] sub }"
        ))
        coding = tree.operations[0].items[1]
        pattern, label, ref = coding.elements
        assert isinstance(pattern, ast.CodingPatternAst)
        assert label.width == 4
        assert ref.width is None

    def test_coding_exact_binary_preserves_width(self):
        tree = parse_source(op_source("CODING { 0b0010 }"))
        pattern = tree.operations[0].items[0].elements[0]
        assert pattern.pattern.width == 4
        assert pattern.pattern.value == 2

    def test_coding_rejects_decimal_literal(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("CODING { 5 }"))

    def test_empty_coding_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("CODING { }"))

    def test_syntax_elements(self):
        tree = parse_source(op_source('SYNTAX { "add" dst "," src }'))
        elements = tree.operations[0].items[0].elements
        assert [type(e).__name__ for e in elements] == [
            "SyntaxLiteralAst", "SyntaxRefAst", "SyntaxLiteralAst",
            "SyntaxRefAst",
        ]

    def test_behavior_tokens_captured_raw(self):
        tree = parse_source(op_source(
            "BEHAVIOR { x = y + { }; }"  # even nested braces survive
        ))
        section = tree.operations[0].items[0]
        assert isinstance(section, ast.BehaviorSectionAst)
        assert [t.text for t in section.tokens] == [
            "x", "=", "y", "+", "{", "}", ";",
        ]

    def test_activation_names(self):
        tree = parse_source(op_source("ACTIVATION { a, b, c }"))
        assert tree.operations[0].items[0].names == ["a", "b", "c"]

    def test_unknown_section_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("WIBBLE { }"))


class TestConditionalSections:
    def test_if_else(self):
        tree = parse_source(op_source(
            "IF (mode == 0) { BEHAVIOR { } } ELSE { BEHAVIOR { } }"
        ))
        guarded = tree.operations[0].items[0]
        assert isinstance(guarded, ast.IfSectionsAst)
        assert len(guarded.then_items) == 1
        assert len(guarded.else_items) == 1

    def test_else_if_chain(self):
        tree = parse_source(op_source(
            "IF (m == 0) { BEHAVIOR { } } ELSE IF (m == 1) { BEHAVIOR { } }"
        ))
        guarded = tree.operations[0].items[0]
        assert isinstance(guarded.else_items[0], ast.IfSectionsAst)

    def test_empty_condition_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("IF () { }"))

    def test_switch_cases(self):
        tree = parse_source(op_source(
            "SWITCH (mode) { CASE 0: { BEHAVIOR { } }"
            " CASE 1: { BEHAVIOR { } } DEFAULT: { BEHAVIOR { } } }"
        ))
        switch = tree.operations[0].items[0]
        assert isinstance(switch, ast.SwitchSectionsAst)
        assert len(switch.cases) == 3
        assert switch.cases[2].value_tokens is None

    def test_switch_without_cases_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("SWITCH (m) { }"))

    def test_case_outside_switch_rejected(self):
        with pytest.raises(LisaSyntaxError):
            parse_source(op_source("CASE 1: { }"))

    def test_walk_sections_descends(self):
        tree = parse_source(op_source(
            'IF (m == 0) { SYNTAX { "a" } } ELSE { SYNTAX { "b" } }'
        ))
        sections = list(tree.operations[0].walk_sections())
        assert len(sections) == 2
