"""Tests for processor state and pipeline control."""

import pytest

from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.support.errors import SimulationError


@pytest.fixture
def state(testmodel):
    return ProcessorState(testmodel)


class TestProcessorState:
    def test_reset_zeroes_everything(self, state):
        state.R[3] = 5
        state.ACC = -2
        state.dmem[1] = 9
        state.reset()
        assert state.R == [0] * 8
        assert state.ACC == 0
        assert state.dmem[1] == 0

    def test_resources_are_attributes(self, state):
        assert isinstance(state.R, list)
        assert isinstance(state.pmem, list)
        assert state.PC == 0

    def test_pc_property(self, state):
        state.pc = 12
        assert state.PC == 12
        assert state.pc == 12

    def test_pc_canonicalised(self, state):
        state.pc = 0x1_0000_0005
        assert state.pc == 5

    def test_checked_register_access(self, state):
        state.write_register("R", 2, 42)
        assert state.read_register("R", 2) == 42
        state.write_register("ACC", 7)
        assert state.read_register("ACC") == 7

    def test_write_canonicalises_width(self, state):
        state.write_register("ACC", 0x1FFFF)  # ACC is int16
        assert state.read_register("ACC") == -1
        state.write_register("R", 0, 2**40)  # R is int32
        assert state.read_register("R", 0) == 0

    def test_file_needs_index(self, state):
        with pytest.raises(SimulationError):
            state.read_register("R")
        with pytest.raises(SimulationError):
            state.write_register("R", 1)

    def test_scalar_rejects_index(self, state):
        with pytest.raises(SimulationError):
            state.read_register("ACC", 0)

    def test_unknown_register_rejected(self, state):
        with pytest.raises(SimulationError):
            state.read_register("Q")

    def test_index_bounds_checked(self, state):
        with pytest.raises(SimulationError):
            state.read_register("R", 8)
        with pytest.raises(SimulationError):
            state.write_register("R", -1, 0)

    def test_memory_access(self, state):
        state.write_memory("dmem", 3, -5)
        assert state.read_memory("dmem", 3) == -5

    def test_memory_canonicalises(self, state):
        state.write_memory("pmem", 0, 0x12345)  # pmem is uint16
        assert state.read_memory("pmem", 0) == 0x2345

    def test_memory_bounds(self, state):
        with pytest.raises(SimulationError):
            state.read_memory("dmem", 64)
        with pytest.raises(SimulationError):
            state.write_memory("dmem", -1, 0)

    def test_unknown_memory_rejected(self, state):
        with pytest.raises(SimulationError):
            state.read_memory("vram", 0)

    def test_load_words(self, state):
        state.load_words("dmem", 2, [1, -2, 70000])
        assert state.dmem[2:5] == [1, -2, state.model.memories["dmem"]
                                   .dtype.canonical(70000)]

    def test_load_words_overflow_rejected(self, state):
        with pytest.raises(SimulationError):
            state.load_words("dmem", 62, [1, 2, 3])

    def test_snapshot_and_differences(self, state, testmodel):
        other = ProcessorState(testmodel)
        assert state.differences(other) == []
        state.R[1] = 5
        other.ACC = 3
        diffs = state.differences(other)
        assert set(diffs) == {"R", "ACC"}

    def test_snapshot_is_deep(self, state):
        snap = state.snapshot()
        state.R[0] = 99
        assert snap["R"][0] == 0


class TestPipelineControl:
    def test_initial_state(self):
        control = PipelineControl()
        assert not control.halted
        assert control.stall_cycles == 0
        assert control.flush_below == -1

    def test_flush_records_highest_stage(self):
        control = PipelineControl()
        control.current_stage = 2
        control.request_flush()
        control.current_stage = 1
        control.request_flush()  # lower stage must not shrink the flush
        assert control.flush_below == 2

    def test_stall_accumulates(self):
        control = PipelineControl()
        control.request_stall(2)
        control.request_stall(3)
        assert control.stall_cycles == 5

    def test_stall_rejects_negative(self):
        control = PipelineControl()
        with pytest.raises(SimulationError):
            control.request_stall(-1)

    def test_halt_implies_flush(self):
        control = PipelineControl()
        control.current_stage = 3
        control.request_halt()
        assert control.halted
        assert control.flush_below == 3

    def test_reset(self):
        control = PipelineControl()
        control.request_halt()
        control.request_stall(4)
        control.reset()
        assert not control.halted
        assert control.stall_cycles == 0
        assert control.flush_below == -1
