"""Tests for the model data base: types, guards, variant resolution."""

import pytest

from repro.behavior.parser import parse_expression
from repro.lisa import model as m
from repro.lisa.lexer import tokenize
from repro.lisa.semantics import compile_source
from repro.support.errors import LisaSemanticError
from tests.conftest import TESTMODEL_SOURCE


def guard(source):
    return parse_expression([t for t in tokenize(source)
                             if t.kind != "eof"])


class TestDataTypes:
    def test_type_table_aliases(self):
        assert m.TYPES["int"] is m.TYPES["int32"]
        assert m.TYPES["uint"] is m.TYPES["uint32"]
        assert m.TYPES["short"] is m.TYPES["int16"]
        assert m.TYPES["long"] is m.TYPES["int64"]

    def test_canonical_signed(self):
        int8 = m.TYPES["int8"]
        assert int8.canonical(127) == 127
        assert int8.canonical(128) == -128
        assert int8.canonical(-1) == -1
        assert int8.canonical(255) == -1
        assert int8.canonical(256) == 0

    def test_canonical_unsigned(self):
        uint8 = m.TYPES["uint8"]
        assert uint8.canonical(255) == 255
        assert uint8.canonical(256) == 0
        assert uint8.canonical(-1) == 255

    def test_int40_accumulator_type(self):
        acc = m.TYPES["int40"]
        assert acc.width == 40
        assert acc.canonical((1 << 39) - 1) == (1 << 39) - 1
        assert acc.canonical(1 << 39) == -(1 << 39)

    def test_unknown_type_rejected(self):
        with pytest.raises(LisaSemanticError):
            m.lookup_type("float128")


class TestConditionEvaluation:
    @pytest.fixture(scope="class")
    def model(self):
        return compile_source(TESTMODEL_SOURCE)

    def test_literals_and_env(self, model):
        assert m.evaluate_condition(guard("3"), {}, model) == 3
        assert m.evaluate_condition(guard("x + 1"), {"x": 4}, model) == 5

    def test_defines_resolve(self, model):
        assert m.evaluate_condition(guard("LONG"), {}, model) == 1

    def test_operation_names_are_symbolic(self, model):
        env = {"op": "add"}
        assert m.evaluate_condition(guard("op == add"), env, model) == 1
        assert m.evaluate_condition(guard("op == ldi"), env, model) == 0

    def test_comparisons_and_logic(self, model):
        env = {"a": 2, "b": 3}
        assert m.evaluate_condition(guard("a < b && b != 0"), env, model)
        assert not m.evaluate_condition(guard("a >= b"), env, model)
        assert m.evaluate_condition(guard("!(a == b)"), env, model)

    def test_arithmetic_in_guards(self, model):
        assert m.evaluate_condition(
            guard("(x & 0b11) == 2"), {"x": 6}, model
        ) == 1

    def test_ternary_in_guard(self, model):
        assert m.evaluate_condition(
            guard("x ? 7 : 9"), {"x": 0}, model
        ) == 9

    def test_unknown_name_rejected(self, model):
        with pytest.raises(LisaSemanticError):
            m.evaluate_condition(guard("mystery == 1"), {}, model)


class TestVariantResolution:
    @pytest.fixture(scope="class")
    def model(self):
        return compile_source(TESTMODEL_SOURCE)

    def test_if_then_branch(self, model, testmodel_tools=None):
        add = model.operations["add"]
        variant = add.resolve_variant({"mode": 0}, model)
        assert len(variant.behaviors) == 1
        assert variant.syntax.elements[0].text == "add"

    def test_if_else_branch(self, model):
        add = model.operations["add"]
        variant = add.resolve_variant({"mode": 1}, model)
        assert variant.syntax.elements[0].text == "addl"

    def test_unconditional_sections_always_present(self, model):
        ldi = model.operations["ldi"]
        variant = ldi.resolve_variant({}, model)
        assert len(variant.behaviors) == 1
        assert variant.expression is None

    def test_activation_names_resolved(self, model):
        st = model.operations["st"]
        variant = st.resolve_variant({}, model)
        assert variant.activations == ("note_store",)

    def test_expression_section(self, model):
        reg = model.operations["reg"]
        variant = reg.resolve_variant({"idx": 3}, model)
        assert variant.expression is not None


class TestSyntaxVariants:
    @pytest.fixture(scope="class")
    def model(self):
        return compile_source(TESTMODEL_SOURCE)

    def test_if_arm_bindings(self, model):
        add = model.operations["add"]
        variants = add.syntax_variants(model)
        by_mnemonic = {
            v[0].elements[0].text: (v[1], v[2]) for v in variants
        }
        assert by_mnemonic["add"] == ({"mode": 0}, True)
        # ELSE arm of a 1-bit guard is solvable to the complement.
        assert by_mnemonic["addl"] == ({"mode": 1}, True)

    def test_unconditional_syntax_has_no_bindings(self, model):
        ldi = model.operations["ldi"]
        ((syntax, bindings, usable),) = ldi.syntax_variants(model)
        assert bindings == {}
        assert usable

    def test_label_width_helper(self, model):
        assert m.label_width(model, "mode") == 1
        assert m.label_width(model, "imm") == 8
        assert m.label_width(model, "no_such_label") is None


class TestSwitchVariants:
    SOURCE = """
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[2];
    MEMORY uint8 pmem[8];
    PIPELINE pipe = { EX };
}
CONFIG { WORDSIZE(4); ROOT(insn); EXECUTE_STAGE(EX); }
OPERATION insn {
    DECLARE { LABEL sel; LABEL val; }
    CODING { sel[2] val[2] }
    SWITCH (sel) {
        CASE 0: { SYNTAX { "zero" val } BEHAVIOR { R[0] = val; } }
        CASE 1: { SYNTAX { "one" val } BEHAVIOR { R[0] = val + 1; } }
        DEFAULT: { SYNTAX { "other" val } BEHAVIOR { R[0] = 0 - 1; } }
    }
}
"""

    def test_switch_case_bindings(self):
        model = compile_source(self.SOURCE)
        insn = model.operations["insn"]
        variants = insn.syntax_variants(model)
        usable = {
            v[0].elements[0].text: v[1] for v in variants if v[2]
        }
        assert usable == {"zero": {"sel": 0}, "one": {"sel": 1}}
        unusable = [v[0].elements[0].text for v in variants if not v[2]]
        assert unusable == ["other"]

    def test_switch_default_selected_at_decode(self):
        model = compile_source(self.SOURCE)
        insn = model.operations["insn"]
        variant = insn.resolve_variant({"sel": 3, "val": 0}, model)
        assert variant.syntax.elements[0].text == "other"


class TestMachineModelQueries:
    def test_describe_mentions_essentials(self, testmodel):
        text = testmodel.describe()
        assert "testmodel" in text
        assert "FE -> DE -> EX -> WB" in text

    def test_stage_of_defaults_to_execute_stage(self, testmodel):
        insn = testmodel.operations["insn"]
        assert testmodel.stage_of(insn) == 2  # EX

    def test_stage_of_explicit(self, testmodel):
        note = testmodel.operations["note_store"]
        assert testmodel.stage_of(note) == 3  # WB

    def test_unknown_operation_rejected(self, testmodel):
        with pytest.raises(LisaSemanticError):
            testmodel.operation("nonexistent")

    def test_resource_names(self, testmodel):
        names = testmodel.resource_names()
        assert {"PC", "R", "ACC", "pmem", "dmem"} <= names

    def test_is_vliw_flag(self, testmodel, c62x):
        assert not testmodel.is_vliw
        assert c62x.is_vliw
