"""Front-end fuzzing: randomly generated LISA models.

Generates small but structurally varied machine descriptions --
random field layouts, operand counts, immediate widths, optional
saturating variants guarded by a mode bit -- compiles them with the
LISA compiler, and checks the generated tool chain end to end:
encode/decode round trips, assembler/disassembler round trips, and
interpretive-vs-compiled simulation agreement on a generated program.

This is the test that retargetability claims hinge on: the flow must
work for models nobody hand-tuned it for.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import build_toolset
from repro.coding.decoder import InstructionDecoder
from repro.coding.encoder import InstructionEncoder, OperandSpec
from repro.lisa.semantics import compile_source
from repro.sim import create_simulator


@st.composite
def model_shapes(draw):
    """A random model shape: register/field widths and op inventory."""
    reg_bits = draw(st.integers(min_value=2, max_value=4))
    imm_bits = draw(st.integers(min_value=3, max_value=10))
    n_alu = draw(st.integers(min_value=1, max_value=4))
    guarded = draw(st.booleans())
    deep_ops = draw(st.booleans())  # a two-level operand group
    return {
        "reg_bits": reg_bits,
        "imm_bits": imm_bits,
        "n_alu": n_alu,
        "guarded": guarded,
        "deep_ops": deep_ops,
    }


_ALU_BEHAVIOURS = [
    ("fadd", "dst = src1 + src2;"),
    ("fsub", "dst = src1 - src2;"),
    ("fxor", "dst = src1 ^ src2;"),
    ("fand", "dst = src1 & src2;"),
]


def build_model_source(shape):
    reg_bits = shape["reg_bits"]
    imm_bits = shape["imm_bits"]
    reg_count = 1 << reg_bits
    opcode_bits = 4
    # Widths: opcode + 3 * reg + pad for ALU; opcode + reg + imm for ldi.
    alu_payload = 3 * reg_bits
    ldi_payload = reg_bits + imm_bits
    st_payload = reg_bits + 5
    payload = max(alu_payload, ldi_payload, st_payload)
    word = 1 + opcode_bits + payload  # 1 mode bit up front

    def pad(used):
        extra = payload - used
        return (" 0b" + "x" * extra) if extra else ""

    ops = []
    names = []
    for index in range(shape["n_alu"]):
        name, behaviour = _ALU_BEHAVIOURS[index]
        names.append(name)
        guard = ""
        if shape["guarded"]:
            guard_body = (
                "    IF (mode == 0) {\n"
                "        SYNTAX { \"%(n)s\" dst \",\" src1 \",\" src2 }\n"
                "        BEHAVIOR { %(b)s }\n"
                "    } ELSE {\n"
                "        SYNTAX { \"%(n)ss\" dst \",\" src1 \",\" src2 }\n"
                "        BEHAVIOR { dst = sat(src1 + src2, 8); }\n"
                "    }\n" % {"n": name, "b": behaviour}
            )
        else:
            guard_body = (
                "    SYNTAX { \"%s\" dst \",\" src1 \",\" src2 }\n"
                "    BEHAVIOR { %s }\n" % (name, behaviour)
            )
        declare_mode = "REFERENCE mode;" if shape["guarded"] else ""
        ops.append(
            "OPERATION %s IN pipe.EX {\n"
            "    DECLARE { GROUP dst = { reg }; GROUP src1 = { reg };\n"
            "              GROUP src2 = { reg }; %s }\n"
            "    CODING { 0b%s dst src1 src2%s }\n"
            "%s}\n"
            % (
                name,
                declare_mode,
                format(index + 1, "04b"),
                pad(alu_payload),
                guard_body,
            )
        )

    if shape["deep_ops"]:
        # ldi via an indirection: an 'immop' group wrapping the payload.
        ops.append(
            "OPERATION immfield {\n"
            "    DECLARE { LABEL ival; }\n"
            "    CODING { ival[%d] }\n"
            "    SYNTAX { ival }\n"
            "    EXPRESSION { ival }\n"
            "}\n" % imm_bits
        )
        ops.append(
            "OPERATION ldi IN pipe.EX {\n"
            "    DECLARE { GROUP dst = { reg }; GROUP val = { immfield }; }\n"
            "    CODING { 0b1001 dst val%s }\n"
            "    SYNTAX { \"ldi\" dst \",\" val }\n"
            "    BEHAVIOR { dst = val; }\n"
            "}\n" % pad(ldi_payload)
        )
    else:
        ops.append(
            "OPERATION ldi IN pipe.EX {\n"
            "    DECLARE { GROUP dst = { reg }; LABEL imm; }\n"
            "    CODING { 0b1001 dst imm[%d]%s }\n"
            "    SYNTAX { \"ldi\" dst \",\" imm }\n"
            "    BEHAVIOR { dst = imm; }\n"
            "}\n" % (imm_bits, pad(ldi_payload))
        )
    names.append("ldi")

    source = """
MODEL fuzzed;
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[%(reg_count)d];
    MEMORY uint64 pmem[128];
    MEMORY int dmem[32];
    PIPELINE pipe = { FE; EX };
}
CONFIG {
    WORDSIZE(%(word)d);
    PROGRAM_MEMORY(pmem);
    ROOT(insn);
    EXECUTE_STAGE(EX);
}
OPERATION reg {
    DECLARE { LABEL idx; }
    CODING { idx[%(reg_bits)d] }
    SYNTAX { "r" idx }
    EXPRESSION { R[idx] }
}
OPERATION st IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL addr; }
    CODING { 0b1010 src addr[5]%(st_pad)s }
    SYNTAX { "st" src "," addr }
    BEHAVIOR { dmem[addr] = src; }
}
OPERATION halt_op IN pipe.EX {
    CODING { 0b1111 0b%(halt_pad)s }
    SYNTAX { "halt" }
    BEHAVIOR { halt(); }
}
%(ops)s
OPERATION insn {
    DECLARE { GROUP op = { %(names)s || st || halt_op }; LABEL mode; }
    CODING { mode[1] op }
    SYNTAX { op }
    ACTIVATION { op }
}
""" % {
        "reg_count": reg_count,
        "word": word,
        "reg_bits": reg_bits,
        "ops": "\n".join(ops),
        "names": " || ".join(names),
        "st_pad": (" 0b" + "x" * (payload - reg_bits - 5))
        if payload - reg_bits - 5 else "",
        "halt_pad": "0" * payload,
    }
    return source, names, reg_count, imm_bits


@settings(max_examples=20, deadline=None)
@given(shape=model_shapes(), seed=st.integers(min_value=0, max_value=9999))
def test_fuzzed_models_end_to_end(shape, seed):
    source, alu_names, reg_count, imm_bits = build_model_source(shape)
    model = compile_source(source, "fuzzed.lisa")
    tools = build_toolset(model)
    encoder = InstructionEncoder(model)
    decoder = InstructionDecoder(model)

    # 1. Encode/decode round trip on a concrete ALU instruction.
    alu = alu_names[0]
    spec = OperandSpec("insn", fields={"mode": 0}, children={
        "op": OperandSpec(alu, children={
            "dst": OperandSpec("reg", fields={"idx": 1 % reg_count}),
            "src1": OperandSpec("reg", fields={"idx": 2 % reg_count}),
            "src2": OperandSpec("reg", fields={"idx": 3 % reg_count}),
        })
    })
    word = encoder.encode(spec)
    node = decoder.decode(word)
    assert encoder.encode(encoder.spec_from_decoded(node)) == word

    # 2. Assemble a program exercising every generated ALU op, run it on
    #    two simulation levels, compare results.
    imm_max = (1 << imm_bits) - 1
    lines = [
        "ldi r0, %d" % (seed % (imm_max + 1)),
        "ldi r1, %d" % ((seed * 7 + 3) % (imm_max + 1)),
    ]
    for index, name in enumerate(alu_names[:-1]):
        dst = (2 + index) % reg_count
        lines.append("%s r%d, r0, r1" % (name, dst))
        lines.append("st r%d, %d" % (dst, index))
    lines.append("halt")
    program = tools.assembler.assemble_text("\n".join(lines))

    # 3. Disassembler round trip over the whole program.
    for segment in program.segments_in("pmem"):
        for word in segment.words:
            text = tools.disassembler.disassemble_word(word)
            again = tools.assembler.assemble_text(text)
            assert again.segments[0].words[0] == word, text

    results = []
    for kind in ("interpretive", "compiled"):
        simulator = create_simulator(model, kind)
        simulator.load_program(program)
        stats = simulator.run(max_cycles=10_000)
        results.append((stats.cycles, simulator.state.snapshot()))
    assert results[0] == results[1]
