"""Instruction-level semantic tests for the shipped c54x model."""

import pytest

from repro.sim import create_simulator


def run(tools, model, source, kind="compiled", max_cycles=100_000):
    program = tools.assembler.assemble_text(source)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    simulator.run(max_cycles)
    return simulator


class TestAccumulators:
    def test_ld_immediate_both_accs(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld 100, a
        ld -7, b
        halt
""")
        assert sim.state.A == 100
        assert sim.state.B == -7

    def test_ld_from_memory_sign_extends(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        .section dmem
        .word -3
        .section pmem
        stm 0, ar1
        ld *ar1, a
        halt
""")
        assert sim.state.A == -3

    def test_stl_and_sth(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld 1, a
        sftl a, 20          ; a = 1 << 20
        add 5, a
        stm 10, ar1
        stl a, *ar1+        ; low 16 bits -> dmem[10]
        sth a, *ar1         ; bits 31..16 -> dmem[11]
        halt
""")
        value = (1 << 20) + 5
        low = value & 0xFFFF
        if low >= 0x8000:
            low -= 0x10000
        assert sim.state.dmem[10] == low
        assert sim.state.dmem[11] == (value >> 16) & 0xFFFF

    def test_acc_is_40_bits(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld 1, a
        sftl a, 31          ; 2^31: beyond 32 bits lives in guard bits
        sftl a, 1           ; 2^32
        halt
""")
        assert sim.state.A == 1 << 32

    def test_sftr_arithmetic(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld -16, a
        sftr a, 2
        halt
""")
        assert sim.state.A == -4

    def test_add_sub_memory(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        .section dmem
        .word 10, 20
        .section pmem
        stm 0, ar1
        ld 0, a
        add *ar1+, a
        add *ar1, a
        sub *ar1, a         ; a = 10 + 20 - 20
        halt
""")
        assert sim.state.A == 10

    def test_add_immediate(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, "ld 2, a\nadd 500, a\nhalt\n")
        assert sim.state.A == 502


class TestMultiplier:
    def test_lt_mpy_mac_mas(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        .section dmem
        .word 7, 11, 3
        .section pmem
        stm 0, ar1
        lt *ar1+            ; T = 7
        mpy *ar1+, a        ; a = 7 * 11
        mac *ar1, a         ; a += 7 * 3
        mas *ar1, b         ; b = 0 - 7 * 3
        halt
""")
        assert sim.state.T == 7
        assert sim.state.A == 7 * 11 + 7 * 3
        assert sim.state.B == -21

    def test_mac_negative_products(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        .section dmem
        .word -100, 50
        .section pmem
        stm 0, ar1
        lt *ar1+
        mac *ar1, a
        halt
""")
        assert sim.state.A == -5000


class TestAddressRegisters:
    def test_postmodify_variants(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        stm 5, ar1
        mar *ar1+
        mar *ar1+
        mar *ar1-
        halt
""")
        assert sim.state.AR[1] == 6

    def test_adar_signed_offsets(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        stm 50, ar2
        adar ar2, 30
        adar ar2, -10
        halt
""")
        assert sim.state.AR[2] == 70

    def test_ar_wraps_16_bits(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        stm 0, ar1
        mar *ar1-
        halt
""")
        assert sim.state.AR[1] == 0xFFFF


class TestControlFlow:
    def test_banz_loop_count(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        stm 3, ar0
        ld 0, a
loop:   add 1, a
        banz loop, ar0
        halt
""")
        # Body executes 4 times (banz taken while AR0 != 0, then once
        # more on the fall-through pass).
        assert sim.state.A == 4
        assert sim.state.AR[0] == 0

    def test_unconditional_branch_flushes(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        b over
        ld 99, a            ; must be squashed
over:   ld 1, b
        halt
""")
        assert sim.state.A == 0
        assert sim.state.B == 1

    def test_branch_penalty_is_pipeline_depth_minus_one(self, c54x,
                                                        c54x_tools):
        straight = run(c54x_tools, c54x, "nop\nnop\nnop\nhalt\n")
        branchy = run(c54x_tools, c54x, """
        b t1
t1:     nop
        nop
        halt
""")
        # The taken branch refetches from its own fall-through point:
        # five squashed fetches on the 6-stage pipeline.
        assert branchy.cycles == straight.cycles + 5


class TestAllSimulatorsAgree:
    @pytest.mark.parametrize("kind", [
        "interpretive", "predecoded", "static", "unfolded",
        "unfolded_static",
    ])
    def test_fir_like_kernel(self, c54x, c54x_tools, kind):
        source = """
        .section dmem
        .word 1, 2, 3, 4
        .org 8
        .word 5, 6, 7, 8
        .section pmem
        stm 0, ar1
        stm 8, ar2
        stm 3, ar0
        ld 0, a
loop:   lt *ar1+
        mac *ar2+, a
        banz loop, ar0
        stm 20, ar3
        stl a, *ar3
        halt
"""
        reference = run(c54x_tools, c54x, source, kind="compiled")
        other = run(c54x_tools, c54x, source, kind=kind)
        assert other.state.differences(reference.state) == []
        assert other.cycles == reference.cycles


class TestAccumulatorUnaryOps:
    def test_abs(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld -42, a
        abs a
        ld 17, b
        abs b
        halt
""")
        assert sim.state.A == 42
        assert sim.state.B == 17

    def test_neg(self, c54x, c54x_tools):
        sim = run(c54x_tools, c54x, """
        ld 42, a
        neg a
        ld -7, b
        neg b
        halt
""")
        assert sim.state.A == -42
        assert sim.state.B == 7

    def test_roundtrip(self, c54x_tools):
        for line in ("abs a", "neg b"):
            program = c54x_tools.assembler.assemble_text(line)
            word = program.segments[0].words[0]
            text = c54x_tools.disassembler.disassemble_word(word)
            again = c54x_tools.assembler.assemble_text(text)
            assert again.segments[0].words[0] == word, line
