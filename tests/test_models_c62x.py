"""Instruction-level and timing tests for the shipped c62x VLIW model."""

import pytest

from repro.sim import create_simulator


def run(tools, model, source, kind="compiled", max_cycles=1_000_000):
    program = tools.assembler.assemble_text(source)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    simulator.run(max_cycles)
    return simulator


NOP5 = "        nop\n" * 5


class TestAluAndConstants:
    def test_mvk_mvkh_build_32_bit_constant(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 0x5678
        mvkh a1, 0x1234
        halt
""")
        assert sim.state.A[1] == 0x12345678

    def test_mvk_sign_extends(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, "mvk b2, 65535\nhalt\n")
        assert sim.state.B[2] == -1

    def test_cross_file_operands(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 3
        mvk b1, 4
        add a2, a1, b1
        add b2, b1, a1
        halt
""")
        assert sim.state.A[2] == 7
        assert sim.state.B[2] == 7

    def test_compare_ops_produce_flags(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, -5
        mvk a2, 5
        cmpeq a3, a1, a2
        cmpgt a4, a2, a1
        cmplt a5, a2, a1
        cmpeq b3, a1, a1
        halt
""")
        assert sim.state.A[3] == 0
        assert sim.state.A[4] == 1
        assert sim.state.A[5] == 0
        assert sim.state.B[3] == 1

    def test_saturating_ops(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 0
        mvkh a1, 0x7fff     ; 0x7fff0000
        mvk a2, 0
        mvkh a2, 0x7fff
        sadd a3, a1, a2     ; saturates at INT32_MAX
        add a4, a1, a2      ; wraps
        halt
""")
        assert sim.state.A[3] == 0x7FFFFFFF
        assert sim.state.A[4] == -131072

    def test_sshl_saturating_shift(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 40000
        mvkh a1, 0          ; a1 = 40000 (as unsigned 16 would overflow)
        sshl a2, a1, 16
        shr a3, a2, 16      ; the 16-bit clamp idiom
        mvk b1, 100
        sshl b2, b1, 16
        shr b3, b2, 16
        halt
""")
        assert sim.state.A[3] == 32767
        assert sim.state.B[3] == 100

    def test_shru_logical(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, -1
        shru a2, a1, 28
        shr a3, a1, 28
        halt
""")
        assert sim.state.A[2] == 0xF
        assert sim.state.A[3] == -1

    def test_abs_and_mv(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, -123
        abs a2, a1
        mv b1, a2
        halt
""")
        assert sim.state.A[2] == 123
        assert sim.state.B[1] == 123


class TestMultiplier:
    def test_mpy_low_halves(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, -300
        mvk a2, 200
        mpy a3, a1, a2
        halt
""")
        assert sim.state.A[3] == -60000

    def test_mpyh_high_halves(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 0
        mvkh a1, 7          ; high half = 7
        mvk a2, 0
        mvkh a2, 11
        mpyh a3, a1, a2
        halt
""")
        assert sim.state.A[3] == 77

    def test_mpy_result_usable_next_packet(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 6
        mvk a2, 7
        mpy a3, a1, a2
        add a4, a3, a3      ; next packet: sees the product
        halt
""")
        assert sim.state.A[4] == 84


class TestLoadStoreTiming:
    def test_load_data_visible_after_delay(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        .section dmem
        .word 42
        .section pmem
        mvk a4, 0
        ldw a5, a4, 0
        mv b1, a5           ; delay slot 1: still old value (0)
        mv b2, a5           ; delay slot 2
        mv b3, a5           ; delay slot 3
        mv b4, a5           ; 4th following packet: sees 42
        halt
""")
        assert sim.state.B[1] == 0
        assert sim.state.B[2] == 0
        assert sim.state.B[3] == 0
        assert sim.state.B[4] == 42

    def test_base_can_be_modified_in_delay_slots(self, c62x, c62x_tools):
        """The in-flight address is latched at E1 (the lsq idiom)."""
        sim = run(c62x_tools, c62x, """
        .section dmem
        .word 10, 20
        .section pmem
        mvk a4, 0
        ldw a5, a4, 0
        addk a4, 1          ; pointer bump inside the delay slots
        nop
        nop
        nop
        mv b1, a5           ; must be dmem[0], not dmem[1]
        halt
""")
        assert sim.state.B[1] == 10

    def test_back_to_back_loads_use_distinct_queue_slots(self, c62x,
                                                         c62x_tools):
        sim = run(c62x_tools, c62x, """
        .section dmem
        .word 1, 2, 3, 4
        .section pmem
        mvk a4, 0
        ldw a5, a4, 0
        ldw a6, a4, 1
        ldw a7, a4, 2
        ldw a8, a4, 3
        nop
        nop
        nop
        halt
""")
        assert [sim.state.A[i] for i in (5, 6, 7, 8)] == [1, 2, 3, 4]

    def test_store_then_load(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 99
        mvk a4, 5
        stw a1, a4, 0
        ldw a2, a4, 0
        nop
        nop
        nop
        halt
""")
        assert sim.state.dmem[5] == 99
        assert sim.state.A[2] == 99

    def test_negative_offsets(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        .section dmem
        .word 7
        .section pmem
        mvk a4, 4
        ldw a5, a4, -4
        nop
        nop
        nop
        halt
""")
        assert sim.state.A[5] == 7


class TestBranchTiming:
    def test_branch_has_five_delay_slots(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 0
        b over
        addk a1, 1          ; delay slot 1: executes
        addk a1, 1          ; 2
        addk a1, 1          ; 3
        addk a1, 1          ; 4
        addk a1, 1          ; 5
        addk a1, 100        ; must NOT execute
over:   halt
""")
        assert sim.state.A[1] == 5

    def test_conditional_branch_taken_and_not(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 1
        mvk a2, 0
        bnz a1, t1          ; taken
%(nops)s
        halt
t1:     bz a1, t2           ; not taken (a1 != 0)
%(nops)s
        mvk a2, 7
        halt
t2:     mvk a2, 99
        halt
""" % {"nops": NOP5})
        assert sim.state.A[2] == 7

    def test_loop_with_delay_slots(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 10
        mvk a2, 0
loop:   addk a2, 3
        addk a1, -1
        bnz a1, loop
%(nops)s
        halt
""" % {"nops": NOP5})
        assert sim.state.A[2] == 30
        assert sim.state.A[1] == 0


class TestVliwIssue:
    def test_parallel_instructions_same_cycle(self, c62x, c62x_tools):
        parallel = run(c62x_tools, c62x, """
        mvk a1, 1
     || mvk a2, 2
     || mvk a3, 3
     || mvk a4, 4
        halt
""")
        serial = run(c62x_tools, c62x, """
        mvk a1, 1
        mvk a2, 2
        mvk a3, 3
        mvk a4, 4
        halt
""")
        assert parallel.cycles == serial.cycles - 3
        assert parallel.state.A[1:5] == [1, 2, 3, 4]

    def test_packet_cap_at_eight_words(self, c62x, c62x_tools):
        lines = ["        mvk a1, 1"]
        for i in range(2, 11):
            lines.append("     || mvk a%d, %d" % (i % 8 + 1, i))
        lines.append("        halt")
        sim = run(c62x_tools, c62x, "\n".join(lines))
        # 10 chained words split as 8 + 2: the program still executes.
        assert sim.stats.instructions >= 10

    def test_instructions_counted_per_word(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 1
     || mvk a2, 2
        halt
""")
        assert sim.stats.instructions == 3


class TestAllSimulatorsAgreeC62x:
    @pytest.mark.parametrize("kind", [
        "interpretive", "predecoded", "static", "unfolded",
        "unfolded_static",
    ])
    def test_mixed_program(self, c62x, c62x_tools, kind):
        source = """
        .section dmem
        .word 5, 6, 7
        .section pmem
        mvk a4, 0
        mvk a1, 3
        mvk a7, 0
loop:   ldw a5, a4, 0
     || addk a1, -1
        addk a4, 1
        nop
        nop
        mpy a6, a5, a5
        add a7, a7, a6
        bnz a1, loop
%(nops)s
        stw a7, a0, 100
        halt
""" % {"nops": NOP5}
        reference = run(c62x_tools, c62x, source, kind="compiled")
        other = run(c62x_tools, c62x, source, kind=kind)
        assert other.state.differences(reference.state) == []
        assert other.cycles == reference.cycles
        assert reference.state.dmem[100] == 25 + 36 + 49


class TestSimdAndBitfieldOps:
    def test_add2_independent_halves(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 0xFFFF     ; low = 0xFFFF (as unsigned field)
        mvkh a1, 1         ; a1 = 0x0001FFFF
        mvk a2, 1
        mvkh a2, 2         ; a2 = 0x00020001
        add2 a3, a1, a2    ; halves add independently: no carry across
        halt
""")
        assert sim.state.A[3] & 0xFFFF == 0x0000  # 0xFFFF+1 wraps in 16
        assert (sim.state.A[3] >> 16) & 0xFFFF == 0x0003  # 1+2, no carry

    def test_sub2(self, c62x, c62x_tools):
        sim = run(c62x_tools, c62x, """
        mvk a1, 5
        mvkh a1, 10
        mvk a2, 7
        mvkh a2, 4
        sub2 a3, a1, a2
        halt
""")
        assert sim.state.A[3] & 0xFFFF == (5 - 7) & 0xFFFF
        assert (sim.state.A[3] >> 16) & 0xFFFF == 6

    @pytest.mark.parametrize("value,expected", [
        (0, 31), (-1, 31), (1, 30), (-2, 30), (0x40000000, 0),
        (0x7FFFFFFF, 0), (256, 22),
    ])
    def test_norm_counts_redundant_sign_bits(self, c62x, c62x_tools,
                                             value, expected):
        low = value & 0xFFFF
        high = (value >> 16) & 0xFFFF
        sim = run(c62x_tools, c62x, """
        mvk a1, %d
        mvkh a1, %d
        norm a2, a1
        halt
""" % (low, high))
        assert sim.state.A[2] == expected, value

    def test_ext_signed_field(self, c62x, c62x_tools):
        # Extract bits 11..4 (8 bits) of 0xABC0: field 0xBC -> signed.
        sim = run(c62x_tools, c62x, """
        mvk a1, 0xABC0
        mvkh a1, 0
        ext a2, a1, 20, 24     ; left 20 puts bit 11 at 31, right 24
        extu a3, a1, 20, 24
        halt
""")
        assert sim.state.A[2] == -68  # 0xBC sign-extended from 8 bits
        assert sim.state.A[3] == 0xBC

    def test_new_ops_roundtrip_through_tools(self, c62x_tools):
        for line in ("add2 a1, a2, b3", "sub2 b1, b2, b3",
                     "norm a4, b5", "ext a1, a2, 20, 24",
                     "extu b1, b2, 5, 9"):
            program = c62x_tools.assembler.assemble_text(line)
            word = program.segments[0].words[0]
            text = c62x_tools.disassembler.disassemble_word(word)
            again = c62x_tools.assembler.assemble_text(text)
            assert again.segments[0].words[0] == word, line
