"""Instruction-level semantic tests for the shipped tinydsp model."""

import pytest

from repro.sim import create_simulator


def run(tools, model, source, kind="compiled", max_cycles=100_000):
    program = tools.assembler.assemble_text(source)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    simulator.run(max_cycles)
    return simulator


class TestArithmetic:
    def test_add_wraps_32_bits(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 127
        shl r1, r1, 7      ; build a big value: 127 << 7
        shl r1, r1, 7
        shl r1, r1, 7
        shl r1, r1, 4      ; 127 << 25
        add r2, r1, r1     ; wraps in 32 bits
        halt
""")
        expected = ((127 << 25) * 2) & 0xFFFFFFFF
        if expected >= 1 << 31:
            expected -= 1 << 32
        assert sim.state.R[2] == expected

    def test_adds_saturates_to_16_bits(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 127
        shl r1, r1, 7        ; 16256
        shl r2, r1, 1        ; 32512
        adds r3, r1, r2      ; 48768 -> saturate 32767
        add r4, r1, r2       ; plain add: 48768
        halt
""")
        assert sim.state.R[3] == 32767
        assert sim.state.R[4] == 48768

    def test_sub_and_subs(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, -100
        shl r1, r1, 7       ; -12800
        shl r2, r1, 2       ; -51200 (wrapped into 32 bits, fine)
        subs r3, r1, r2     ; -12800 - -51200 = 38400 -> 32767
        sub r4, r2, r1      ; -38400
        halt
""")
        assert sim.state.R[3] == 32767
        assert sim.state.R[4] == -38400

    def test_mul_and_muls(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 100
        ldi r2, 100
        mul r3, r1, r2      ; 10000
        mul r4, r3, r2      ; 1000000
        muls r5, r3, r2     ; saturates to 32767
        halt
""")
        assert sim.state.R[3] == 10000
        assert sim.state.R[4] == 1000000
        assert sim.state.R[5] == 32767

    def test_logic_ops(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 0b1100
        ldi r2, 0b1010
        and r3, r1, r2
        or r4, r1, r2
        xor r5, r1, r2
        halt
""")
        assert sim.state.R[3] == 0b1000
        assert sim.state.R[4] == 0b1110
        assert sim.state.R[5] == 0b0110

    def test_shifts_are_arithmetic(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, -8
        shr r2, r1, 1       ; arithmetic: -4
        ldi r3, 8
        shr r4, r3, 2       ; 2
        shl r5, r3, 3       ; 64
        halt
""")
        assert sim.state.R[2] == -4
        assert sim.state.R[4] == 2
        assert sim.state.R[5] == 64

    def test_ldi_sign_extends(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, "ldi r1, 255\nhalt\n")
        assert sim.state.R[1] == -1

    def test_mov(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 55
        mov r2, r1
        halt
""")
        assert sim.state.R[2] == 55


class TestMemoryModes:
    """The non-orthogonal mode bit reused for addressing (Section 5.1)."""

    def test_direct_load_store(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 77
        st r1, 13
        ld r2, 13
        halt
""")
        assert sim.state.dmem[13] == 77
        assert sim.state.R[2] == 77

    def test_indirect_load_store(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 20        ; pointer
        ldi r2, -5
        st r2, *1         ; dmem[R[1]] = -5
        ld r3, *1
        halt
""")
        assert sim.state.dmem[20] == -5
        assert sim.state.R[3] == -5

    def test_direct_and_indirect_differ_only_in_mode_bit(self,
                                                         tinydsp_tools):
        asm = tinydsp_tools.assembler
        direct = asm.assemble_text("ld r1, 2").segments[0].words[0]
        indirect = asm.assemble_text("ld r1, * 2").segments[0].words[0]
        assert direct & 0x7FFF == indirect & 0x7FFF
        assert direct >> 15 == 0
        assert indirect >> 15 == 1


class TestControlFlow:
    def test_taken_branch_flush_penalty(self, tinydsp, tinydsp_tools):
        """A taken branch squashes the two younger stages: on a 4-stage
        pipeline a tight countdown loop costs 1 + 2 squashed cycles per
        iteration plus its body."""
        sim = run(tinydsp_tools, tinydsp, """
        ldi r1, 3
        ldi r2, -1
loop:   add r1, r1, r2
        brnz r1, loop
        halt
""")
        # Prologue fill (3) + 2 ldi + per-iteration (add + brnz + 2 flush)
        # with the last iteration not flushing + halt + drain.
        assert sim.state.R[1] == 0
        interp = run(tinydsp_tools, tinydsp, """
        ldi r1, 3
        ldi r2, -1
loop:   add r1, r1, r2
        brnz r1, loop
        halt
""", kind="interpretive")
        assert interp.cycles == sim.cycles

    def test_untaken_branch_costs_one_cycle(self, tinydsp, tinydsp_tools):
        taken = run(tinydsp_tools, tinydsp, """
        ldi r1, 1
        brnz r1, skip
skip:   halt
""")
        untaken = run(tinydsp_tools, tinydsp, """
        ldi r1, 0
        brnz r1, skip
skip:   halt
""")
        # The taken branch flushes two fetches that must be refetched.
        assert taken.cycles == untaken.cycles + 2

    def test_unconditional_branch(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        br over
        ldi r1, 99         ; skipped
over:   ldi r2, 1
        halt
""")
        assert sim.state.R[1] == 0
        assert sim.state.R[2] == 1

    def test_code_after_halt_never_runs(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        halt
        ldi r1, 42
""")
        assert sim.state.R[1] == 0

    def test_zero_word_is_nop(self, tinydsp, tinydsp_tools):
        sim = run(tinydsp_tools, tinydsp, """
        .org 0
        nop
        halt
""")
        assert sim.cycles > 0
