"""Native in-burst telemetry: observer-compatible bursts.

The tentpole guarantee of the observability layer: an observer in
``profile`` (or ``counters``) mode no longer forces the native backend
onto the per-cycle Python path.  The generated C maintains a telemetry
side-region in the flat state buffer and the engine flushes it into the
metrics registry at burst boundaries -- producing per-packet counters
that are **bit-identical** to a per-cycle Python-loop run.

These tests check that construction over the full app x model matrix,
plus the mode semantics around it:

* profile-mode native runs burst (``dispatch_counts["bursts"] > 0``)
  and every deterministic counter, family and histogram matches the
  Python backend exactly,
* trace-mode observers still take the per-cycle path (events cannot be
  emitted from inside a burst),
* an un-instrumented run renders byte-identical C to the plain
  generator (the telemetry variant is a separate artifact),
* the hot-region report built from a native profile run matches the
  one built from a Python run.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.apps import build_adpcm, build_fir, build_gsm
from repro.bench import load_app_program
from repro.sim import create_simulator
from repro.simcc.native import NativePipeline, native_available

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on the host"
)

APP_MATRIX = [
    ("fir-c62x", lambda: build_fir("c62x", taps=4, samples=8)),
    ("fir-c54x", lambda: build_fir("c54x", taps=4, samples=8)),
    ("fir-tinydsp", lambda: build_fir("tinydsp", taps=4, samples=8)),
    ("adpcm-c62x", lambda: build_adpcm(samples=16)),
    ("gsm-c62x", lambda: build_gsm(target_words=1024)),
]

#: The deterministic slice of the metrics registry both paths must
#: agree on bit-for-bit.  (Span histograms and run.wall_seconds are
#: wall-clock dependent; native.* gauges intentionally differ.)
PARITY_COUNTERS = (
    "sim.issue_cycles", "sim.instructions_issued", "sim.bubble_cycles",
    "sim.squashed_slots", "control.stalls", "control.flushes",
    "control.halts",
)
PARITY_FAMILIES = (
    "sim.fetch_by_pc", "sim.cycles_by_pc", "sim.packet_sizes",
    "sim.bubbles_by_reason",
)
PARITY_HISTOGRAMS = ("sim.packet_insns",)


def _observed_run(model, program, kind, backend, mode):
    observer = obs.Observer(mode=mode)
    simulator = create_simulator(
        model, kind, backend=backend, observer=observer
    )
    simulator.load_program(program)
    simulator.run()
    return observer, simulator


def _parity_slice(observer):
    metrics = observer.metrics
    return {
        "counters": {
            name: metrics.counter(name) for name in PARITY_COUNTERS
        },
        "families": {
            name: dict(metrics.family(name)) for name in PARITY_FAMILIES
        },
        "histograms": {
            name: metrics.histograms[name].to_dict()
            for name in PARITY_HISTOGRAMS
            if name in metrics.histograms
        },
    }


@needs_cc
@pytest.mark.parametrize(
    "builder", [entry[1] for entry in APP_MATRIX],
    ids=[entry[0] for entry in APP_MATRIX],
)
def test_profile_mode_burst_counters_bit_identical(builder):
    """Per-packet counters from the telemetry flush match a per-cycle
    Python-loop run exactly, on every app x model pair."""
    app = builder()
    model, program = load_app_program(app)

    py_obs, py_sim = _observed_run(
        model, program, "unfolded", "python", obs.PROFILE_MODE
    )
    nat_obs, nat_sim = _observed_run(
        model, program, "unfolded", "native", obs.PROFILE_MODE
    )

    assert isinstance(nat_sim.engine, NativePipeline)
    counts = nat_sim.engine.dispatch_counts
    assert counts["bursts"] > 0, "observer must not disable bursting"
    assert counts["native_cycles"] > 0
    assert nat_sim.cycles == py_sim.cycles
    assert nat_sim.state.differences(py_sim.state) == []
    assert _parity_slice(nat_obs) == _parity_slice(py_obs)
    # Attribution is exhaustive: every simulated cycle is billed to
    # some packet.
    attributed = sum(nat_obs.metrics.family("sim.cycles_by_pc").values())
    assert attributed == nat_sim.cycles


@needs_cc
@pytest.mark.parametrize(
    "kind", ["compiled", "static", "unfolded", "unfolded_static"]
)
def test_profile_mode_bursts_on_every_table_kind(kind):
    """Every table-based kind keeps bursting under a profile observer,
    with counters matching its own Python-backend run."""
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    py_obs, py_sim = _observed_run(
        model, program, kind, "python", obs.PROFILE_MODE
    )
    nat_obs, nat_sim = _observed_run(
        model, program, kind, "native", obs.PROFILE_MODE
    )

    assert nat_sim.engine.dispatch_counts["bursts"] > 0
    assert nat_sim.cycles == py_sim.cycles
    assert _parity_slice(nat_obs) == _parity_slice(py_obs)


@needs_cc
def test_counters_mode_bursts_without_attribution():
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    observer, simulator = _observed_run(
        model, program, "unfolded_static", "native", obs.COUNTERS_MODE
    )
    counts = simulator.engine.dispatch_counts
    assert counts["bursts"] > 0
    assert observer.metrics.counter("sim.issue_cycles") > 0
    # counters mode skips per-packet cycle attribution entirely.
    assert observer.metrics.family("sim.cycles_by_pc") == {}
    assert observer.events_of(obs.FETCH) == []


@needs_cc
def test_trace_mode_still_takes_per_cycle_path():
    """Per-cycle events cannot come out of a burst: a trace-mode
    observer forces the Python path and records every fetch."""
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    observer, simulator = _observed_run(
        model, program, "unfolded_static", "native", obs.TRACE_MODE
    )
    counts = simulator.engine.dispatch_counts
    assert counts["bursts"] == 0
    assert counts["python_cycles"] == simulator.cycles
    fetches = observer.events_of(obs.FETCH)
    assert len(fetches) == observer.metrics.counter("sim.issue_cycles")


@needs_cc
def test_hot_region_report_backend_invariant():
    """The profile report ranks the same packets with the same shares
    whether the cycles were attributed in Python or flushed from C."""
    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)

    py_obs, _ = _observed_run(
        model, program, "unfolded", "python", obs.PROFILE_MODE
    )
    nat_obs, _ = _observed_run(
        model, program, "unfolded", "native", obs.PROFILE_MODE
    )
    py_report = obs.hot_region_report(py_obs)
    nat_report = obs.hot_region_report(nat_obs)
    assert py_report["basis"] == nat_report["basis"] == "attributed_cycles"
    assert py_report["packets"] == nat_report["packets"]
    assert py_report["windows"] == nat_report["windows"]
    assert py_report["total_cycles"] == nat_report["total_cycles"]


def test_plain_source_untouched_by_telemetry_support():
    """telemetry=False renders C with no trace of the side-region, so
    un-instrumented runs reuse their pre-existing cached artifacts."""
    from repro.machine.control import PipelineControl
    from repro.machine.state import ProcessorState
    from repro.simcc import SimulationCompiler
    from repro.simcc.native import cgen
    from repro.simcc.native.layout import StateLayout, TEL_HEADER_SLOTS

    app = build_fir("c62x", taps=4, samples=8)
    model, program = load_app_program(app)
    state = ProcessorState(model)
    program.load_into(state)
    table = SimulationCompiler(model).compile(
        program, state, PipelineControl(), level="instantiated"
    )
    layout = StateLayout.build(model)

    plain_source, plain_plan = cgen.render_native_source(
        table, model, layout
    )
    tel_source, tel_plan = cgen.render_native_source(
        table, model, layout, telemetry=True
    )
    assert "TEL_" not in plain_source
    assert plain_plan.telemetry is None
    assert "TEL_DISP" in tel_source
    region = tel_plan.telemetry
    assert region is not None
    assert region.base == layout.total_slots
    assert region.slots == TEL_HEADER_SLOTS + 2 * region.n_pc
    # The telemetry variant is a different artifact by construction.
    assert plain_source != tel_source


def test_telemetry_region_geometry():
    from repro.simcc.native import layout as L

    region = L.TelemetryRegion(base=100, n_pc=7)
    assert region.disp_base == 100 + L.TEL_HEADER_SLOTS
    assert region.cyc_base == 100 + L.TEL_HEADER_SLOTS + 7
    assert region.slots == L.TEL_HEADER_SLOTS + 14
    assert "telemetry" in region.describe()


def test_on_burst_telemetry_matches_per_cycle_hooks():
    """The flush helper reproduces exactly what the per-cycle hooks
    would have accumulated (no compiler required)."""

    class _Slot:
        def __init__(self, insn_count):
            self.insn_count = insn_count
            self.words = insn_count
            self.label = None

    reference = obs.Observer(mode=obs.PROFILE_MODE, record=False)
    # pc 10 issues twice (2 insns), pc 11 once (1 insn), then a stall
    # bubble billed to pc 11, a drain bubble, and a squash of 3 slots.
    reference.on_issue(0, 10, _Slot(2))
    reference.on_issue(1, 10, _Slot(2))
    reference.on_issue(2, 11, _Slot(1))
    reference.on_bubble(3, "stall")
    reference.on_bubble(4, "drain")
    reference.on_squash(5, 3)
    reference.on_stall("EX", 1)
    reference.on_flush("EX")
    reference.on_halt("EX")

    flushed = obs.Observer(mode=obs.PROFILE_MODE, record=False)
    flushed.on_burst_telemetry(
        pc_base=10, dispatch=[2, 1], cycles=[2, 3], insns=[2, 1],
        drain_bubbles=1, stall_bubbles=1, squashed=3,
        ctrl_stalls=1, ctrl_flushes=1, ctrl_halts=1,
        stray_cycles=0, stray_pc=None, last_pc=11,
    )

    assert flushed.metrics.snapshot() == reference.metrics.snapshot()
    assert flushed.last_issue_pc == reference.last_issue_pc == 11
