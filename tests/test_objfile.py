"""Tests for the object-file container and loader."""

import pytest

from repro.machine.state import ProcessorState
from repro.support.errors import ReproError
from repro.tools.objfile import Program, Segment


class TestSegments:
    def test_add_and_query(self):
        program = Program()
        program.add_segment("pmem", 0, [1, 2, 3])
        program.add_segment("dmem", 4, [9])
        assert program.word_count() == 4
        assert program.word_count("pmem") == 3
        assert len(program.segments_in("dmem")) == 1

    def test_overlap_same_memory_rejected(self):
        program = Program()
        program.add_segment("pmem", 0, [1, 2, 3])
        with pytest.raises(ReproError):
            program.add_segment("pmem", 2, [4])

    def test_adjacent_segments_allowed(self):
        program = Program()
        program.add_segment("pmem", 0, [1, 2])
        program.add_segment("pmem", 2, [3])
        assert program.word_count("pmem") == 3

    def test_same_range_different_memory_allowed(self):
        program = Program()
        program.add_segment("pmem", 0, [1])
        program.add_segment("dmem", 0, [2])
        assert program.word_count() == 2

    def test_segment_end_and_overlap_helpers(self):
        a = Segment("m", 0, [1, 2])
        b = Segment("m", 1, [1])
        c = Segment("m", 2, [1])
        assert a.end == 2
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestLoading:
    def test_load_into_sets_memory_and_pc(self, testmodel):
        state = ProcessorState(testmodel)
        program = Program(entry=3)
        program.add_segment("pmem", 1, [10, 20])
        program.add_segment("dmem", 0, [-7])
        program.load_into(state)
        assert state.pmem[1:3] == [10, 20]
        assert state.dmem[0] == -7
        assert state.pc == 3

    def test_load_out_of_range_rejected(self, testmodel):
        from repro.support.errors import SimulationError

        state = ProcessorState(testmodel)
        program = Program()
        program.add_segment("dmem", 60, [1] * 10)
        with pytest.raises(SimulationError):
            program.load_into(state)


class TestSerialisation:
    def test_dict_roundtrip(self):
        program = Program(name="p", entry=2, symbols={"a": 1})
        program.add_segment("pmem", 0, [5, 6])
        clone = Program.from_dict(program.to_dict())
        assert clone.to_dict() == program.to_dict()

    def test_file_roundtrip(self, tmp_path):
        program = Program(name="f", entry=1)
        program.add_segment("pmem", 0, [7])
        path = tmp_path / "prog.dspo"
        program.save(path)
        loaded = Program.load(path)
        assert loaded.entry == 1
        assert loaded.segments[0].words == [7]
