"""Tests for the observability layer (repro.obs)."""

import json
import re

import pytest

from repro import obs
from repro.sim import SIM_KINDS, create_simulator


SOURCE = """
        .entry start
start:  ldi r1, 4
        ldi r2, -1
loop:   add r3, r3, r1
        add r1, r1, r2
        brnz r1, loop
        st r3, 0
        halt
"""


def run_traced(model, tools, kind, observer=None, cache=None):
    program = tools.assembler.assemble_text(SOURCE)
    if observer is None:
        observer = obs.Observer()
    simulator = create_simulator(model, kind, observer=observer,
                                 cache=cache)
    simulator.load_program(program)
    simulator.run(max_cycles=10_000)
    return observer, simulator, program


@pytest.fixture
def traced(testmodel, testmodel_tools):
    return run_traced(testmodel, testmodel_tools, "compiled")


class TestEvents:
    def test_event_ordering(self, traced):
        observer, _, _ = traced
        timestamps = [event.ts for event in observer.events]
        assert timestamps == sorted(timestamps)
        cycles = [e.args["cycle"] for e in observer.events_of(obs.FETCH)]
        assert cycles == sorted(cycles)
        assert observer.events[-1].kind == obs.RUN_END

    def test_fetch_events_cover_issues(self, traced):
        observer, simulator, _ = traced
        fetches = observer.events_of(obs.FETCH)
        assert len(fetches) == observer.metrics.counter("sim.issue_cycles")
        bubbles = observer.events_of(obs.BUBBLE)
        assert len(fetches) + len(bubbles) == simulator.cycles

    def test_control_events(self, traced):
        observer, _, _ = traced
        assert len(observer.events_of(obs.HALT)) == 1
        assert observer.events_of(obs.FLUSH)  # halt flushes younger slots
        # Taken brnz branches flush; the squashed slots are reported.
        squashes = observer.events_of(obs.SQUASH)
        assert sum(e.args["slots"] for e in squashes) \
            == observer.metrics.counter("sim.squashed_slots")

    def test_register_write_events(self, testmodel):
        observer = obs.Observer()
        simulator = create_simulator(testmodel, "compiled",
                                     observer=observer)
        simulator.state.write_register("R", 1, 42)
        events = observer.events_of(obs.REG_WRITE)
        assert len(events) == 1
        assert events[0].args == {"register": "R", "index": 1, "value": 42}

    def test_memory_write_events(self, testmodel):
        observer = obs.Observer()
        simulator = create_simulator(testmodel, "compiled",
                                     observer=observer)
        simulator.state.write_memory("dmem", 3, 7)
        events = observer.events_of(obs.MEM_WRITE)
        assert len(events) == 1
        assert events[0].args["address"] == 3

    def test_metrics_only_observer_records_no_events(
            self, testmodel, testmodel_tools):
        observer = obs.Observer(record=False)
        observer, simulator, _ = run_traced(
            testmodel, testmodel_tools, "compiled", observer=observer)
        assert observer.events is None
        assert observer.events_of(obs.FETCH) == []
        assert observer.metrics.counter("sim.issue_cycles") > 0


class TestSpans:
    def test_span_nesting(self, traced):
        observer, _, _ = traced
        load = observer.spans_of("sim.load")[0]
        compile_span = observer.spans_of("simcc.compile")[0]
        decode = observer.spans_of("simcc.decode")[0]
        assert load.depth == 0 and load.parent is None
        assert compile_span.parent == "sim.load"
        assert decode.parent == "simcc.compile"
        assert load.contains(compile_span)
        assert compile_span.contains(decode)

    def test_compile_phase_spans_present(self, traced):
        observer, _, _ = traced
        names = {span.name for span in observer.spans}
        assert {"sim.load", "simcc.compile", "simcc.decode",
                "simcc.sequence", "simcc.packetize",
                "simcc.analyze"} <= names

    def test_instantiated_level_records_instantiate_span(
            self, testmodel, testmodel_tools):
        observer, _, _ = run_traced(testmodel, testmodel_tools, "unfolded")
        assert observer.spans_of("simcc.instantiate")
        assert not observer.spans_of("simcc.sequence")

    def test_span_durations_accumulate_into_histograms(self, traced):
        observer, _, _ = traced
        histogram = observer.metrics.histograms["span.simcc.decode"]
        assert histogram.count == 1
        assert histogram.total >= 0


class TestMetricsAcrossKinds:
    def _sim_projection(self, snapshot):
        """The kind-independent slice of a metrics snapshot."""
        counters = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("sim.")
        }
        families = {
            name: snapshot["families"].get(name, {})
            for name in ("sim.fetch_by_pc", "sim.bubbles_by_reason",
                         "sim.packet_sizes")
        }
        return counters, families

    def test_snapshots_identical_across_kinds(self, testmodel,
                                              testmodel_tools):
        projections = {}
        for kind in SIM_KINDS:
            observer, _, _ = run_traced(testmodel, testmodel_tools, kind)
            projections[kind] = self._sim_projection(observer.snapshot())
        baseline = projections["compiled"]
        for kind, projection in projections.items():
            assert projection == baseline, kind

    def test_static_kind_counts_composition(self, testmodel,
                                            testmodel_tools):
        observer, _, _ = run_traced(testmodel, testmodel_tools, "static")
        metrics = observer.metrics
        static = metrics.counter("sched.static_cycles")
        dynamic = metrics.counter("sched.dynamic_cycles")
        assert static + dynamic == metrics.gauges["run.cycles"]
        assert 0.0 <= metrics.gauges["sched.static_cycle_ratio"] <= 1.0

    def test_run_gauges(self, traced):
        observer, simulator, _ = traced
        gauges = observer.metrics.gauges
        assert gauges["run.cycles"] == simulator.cycles
        assert gauges["run.kind"] == "compiled"
        assert gauges["run.wall_seconds"] > 0
        assert gauges["run.cycles_per_second"] > 0

    def test_opcode_folding(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        observer = obs.Observer(
            labeler=obs.opcode_labeler(testmodel, program))
        simulator = create_simulator(testmodel, "compiled",
                                     observer=observer)
        simulator.load_program(program)
        simulator.run(max_cycles=10_000)
        by_opcode = observer.metrics.family("sim.dispatch_by_opcode")
        assert by_opcode.get("add", 0) >= 8  # 2 adds x 4 iterations
        assert sum(by_opcode.values()) \
            == observer.metrics.counter("sim.issue_cycles")


class TestCacheEvents:
    def test_cache_miss_then_hit(self, testmodel, testmodel_tools,
                                 tmp_path):
        from repro.simcc.cache import SimulationCache

        cache = SimulationCache(tmp_path)
        cold, _, _ = run_traced(testmodel, testmodel_tools, "compiled",
                                cache=cache)
        outcomes = cold.metrics.family("cache.outcomes")
        assert outcomes == {"miss": 1, "store": 1}
        assert cold.metrics.gauges["cache.hit_rate"] == 0.0
        assert cold.spans_of("cache.lookup")
        assert cold.spans_of("cache.store")
        assert cold.spans_of("cache.bind")

        warm, _, _ = run_traced(testmodel, testmodel_tools, "compiled",
                                cache=cache)
        outcomes = warm.metrics.family("cache.outcomes")
        assert outcomes == {"memory_hit": 1}
        assert warm.metrics.gauges["cache.hit_rate"] == 1.0
        # A warm load never runs the simulation compiler.
        assert not warm.spans_of("simcc.compile")


class TestStaticScheduling:
    def test_fallback_and_verdict_events(self, testmodel, testmodel_tools):
        observer, _, _ = run_traced(testmodel, testmodel_tools, "static")
        verdicts = observer.events_of(obs.HAZARD)
        assert verdicts  # emitted at simulation-compile time
        assert all(
            e.args["verdict"] in ("hazard_free", "conflicting", "unknown")
            for e in verdicts
        )
        # The loop program branches, so control-capable windows fall
        # back to the dynamic path and say why.
        fallbacks = observer.events_of(obs.FALLBACK)
        assert fallbacks
        assert {e.args["reason"] for e in fallbacks} <= {
            "control", "hazard"}


class TestExporters:
    def test_chrome_trace_schema(self, traced):
        observer, _, _ = traced
        trace = obs.to_chrome_trace(observer, process_name="test")
        # Strict JSON: no NaN/Infinity anywhere.
        encoded = json.dumps(trace, allow_nan=False)
        decoded = json.loads(encoded)
        assert isinstance(decoded["traceEvents"], list)
        phases = {"M", "X", "i"}
        for entry in decoded["traceEvents"]:
            assert entry["ph"] in phases
            assert isinstance(entry["pid"], int)
            if entry["ph"] == "X":
                assert entry["dur"] >= 0
                assert isinstance(entry["ts"], float)
            if entry["ph"] == "i":
                assert entry["s"] == "t"
        names = {e["name"] for e in decoded["traceEvents"]}
        assert "sim.load" in names and "fetch" in names
        assert decoded["otherData"]["metrics"]["counters"]

    def test_jsonl_lines_parse(self, traced):
        observer, _, _ = traced
        lines = obs.to_jsonl_lines(observer)
        records = [json.loads(line) for line in lines]
        types = {record["type"] for record in records}
        assert types == {"event", "span", "metrics"}
        assert records[-1]["type"] == "metrics"

    def test_text_summary_sections(self, traced):
        observer, _, _ = traced
        summary = obs.text_summary(observer)
        assert "phases:" in summary
        assert "counters:" in summary
        assert "sim.issue_cycles" in summary

    def test_write_trace_formats(self, traced, tmp_path):
        observer, _, _ = traced
        for fmt, check in (
            ("chrome", lambda text: json.loads(text)["traceEvents"]),
            ("jsonl", lambda text: [json.loads(l) for l in
                                    text.splitlines()]),
            ("summary", lambda text: "counters:" in text),
        ):
            path = tmp_path / ("trace." + fmt)
            obs.write_trace(observer, path, trace_format=fmt)
            assert check(path.read_text())

    def test_write_trace_rejects_unknown_format(self, traced, tmp_path):
        observer, _, _ = traced
        with pytest.raises(ValueError):
            obs.write_trace(observer, tmp_path / "t", trace_format="xml")

    def test_write_metrics(self, traced, tmp_path):
        observer, _, _ = traced
        path = tmp_path / "metrics.json"
        obs.write_metrics(observer, path)
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["sim.issue_cycles"] > 0
        # Family keys render as hex program addresses.
        assert all(key.startswith("0x")
                   for key in snapshot["families"]["sim.fetch_by_pc"])


class TestDisabledPath:
    def test_no_observer_means_plain_step(self, testmodel,
                                          testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(program)
        engine = simulator.engine
        assert engine.step.__func__ is engine._step_plain.__func__

    def test_attach_detach_swaps_step(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        simulator = create_simulator(testmodel, "static")
        simulator.load_program(program)
        engine = simulator.engine
        observer = obs.Observer()
        simulator.attach_observer(observer)
        assert engine.step.__func__ is engine._step_traced.__func__
        simulator.attach_observer(None)
        assert engine.step.__func__ is engine._step_plain.__func__

    def test_tracing_does_not_change_results(self, testmodel,
                                             testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        for kind in SIM_KINDS:
            plain = create_simulator(testmodel, kind)
            plain.load_program(program)
            plain_stats = plain.run(max_cycles=10_000)
            traced = create_simulator(testmodel, kind,
                                      observer=obs.Observer())
            traced.load_program(program)
            traced_stats = traced.run(max_cycles=10_000)
            assert plain.state.differences(traced.state) == [], kind
            assert plain_stats.cycles == traced_stats.cycles, kind
            assert plain_stats.instructions \
                == traced_stats.instructions, kind

    def test_null_sink_is_noop(self, testmodel, testmodel_tools):
        sink = obs.NULL_SINK
        observer = obs.Observer(sinks=(sink,))
        observer, _, _ = run_traced(testmodel, testmodel_tools,
                                    "compiled", observer=observer)
        # The base sink ignores everything and closes cleanly.
        observer.close()

    def test_list_sink_collects(self, testmodel, testmodel_tools):
        sink = obs.ListSink()
        observer = obs.Observer(sinks=(sink,))
        observer, _, _ = run_traced(testmodel, testmodel_tools,
                                    "compiled", observer=observer)
        assert len(sink.events) == len(observer.events)
        assert len(sink.spans) == len(observer.spans)


class TestSpanNestingRoundTrip:
    def test_chrome_spans_nest(self, traced):
        observer, _, _ = traced
        trace = obs.to_chrome_trace(observer)
        slices = [entry for entry in trace["traceEvents"]
                  if entry["ph"] == "X"]
        by_name = {entry["name"]: entry for entry in slices}
        load = by_name["sim.load"]
        assert load["args"]["depth"] == 0
        names = {entry["name"] for entry in slices}
        children = [entry for entry in slices
                    if entry["args"].get("parent") == "sim.load"]
        assert children, "compile phases must nest under sim.load"
        for child in children:
            assert child["args"]["depth"] == load["args"]["depth"] + 1
            assert child["args"]["parent"] in names
            # The child's interval lies inside the parent's.
            assert child["ts"] >= load["ts"]
            assert (child["ts"] + child["dur"]
                    <= load["ts"] + load["dur"] + 1e-3)


class TestOpenMetrics:
    # One exposition line: a comment, or `name{labels} value`.
    _SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$")

    def test_exposition_lints(self, traced):
        observer, _, _ = traced
        text = obs.to_openmetrics(observer)
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        for line in lines[:-1]:
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4
                assert parts[3] in ("counter", "gauge", "info", "summary")
            else:
                assert self._SAMPLE.match(line), line

    def test_values_round_trip(self, traced):
        observer, _, _ = traced
        metrics = observer.metrics
        samples = {}
        for line in obs.to_openmetrics(observer).splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = value
        assert (int(samples["sim_issue_cycles_total"])
                == metrics.counter("sim.issue_cycles"))
        assert int(samples["run_cycles"]) == metrics.gauges["run.cycles"]
        assert 'run_kind_info{value="compiled"} 1' in {
            "%s %s" % item for item in samples.items()
        }
        histogram = metrics.histograms["sim.packet_insns"]
        assert int(samples["sim_packet_insns_count"]) == histogram.count
        assert int(samples["sim_packet_insns_sum"]) == histogram.total
        # Per-address counter families carry the address as a label.
        pc, count = next(iter(metrics.family("sim.fetch_by_pc").items()))
        assert samples['sim_fetch_by_pc_total{key="0x%x"}' % pc] \
            == str(count)

    def test_write_trace_openmetrics(self, traced, tmp_path):
        observer, _, _ = traced
        path = tmp_path / "metrics.om"
        obs.write_trace(observer, path, trace_format="openmetrics")
        assert path.read_text().endswith("# EOF\n")


class TestEventRing:
    def test_capacity_bounds_and_counts_drops(self):
        observer = obs.Observer(event_capacity=4)
        for index in range(6):
            observer.emit("fetch", cycle=index)
        assert len(observer.events) == 4
        assert [e.args["cycle"] for e in observer.events] == [2, 3, 4, 5]
        assert observer.metrics.counter("obs.events_dropped") == 2

    def test_unbounded_opt_in(self):
        observer = obs.Observer(event_capacity=None)
        for index in range(10):
            observer.emit("fetch", cycle=index)
        assert isinstance(observer.events, list)
        assert len(observer.events) == 10
        assert observer.metrics.counter("obs.events_dropped") == 0

    def test_default_is_bounded(self):
        observer = obs.Observer()
        assert observer.events.maxlen == obs.DEFAULT_EVENT_CAPACITY


class TestObserverModes:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            obs.Observer(mode="verbose")

    def test_profile_mode_attributes_without_events(
        self, testmodel, testmodel_tools
    ):
        observer = obs.Observer(mode=obs.PROFILE_MODE)
        observer, simulator, _ = run_traced(
            testmodel, testmodel_tools, "compiled", observer=observer
        )
        assert not observer.wants_cycle_events
        assert observer.events_of(obs.FETCH) == []
        by_pc = observer.metrics.family("sim.cycles_by_pc")
        assert sum(by_pc.values()) == simulator.cycles

    def test_counters_mode_skips_attribution(
        self, testmodel, testmodel_tools
    ):
        observer = obs.Observer(mode=obs.COUNTERS_MODE)
        observer, _, _ = run_traced(
            testmodel, testmodel_tools, "compiled", observer=observer
        )
        assert observer.metrics.counter("sim.issue_cycles") > 0
        assert observer.metrics.family("sim.cycles_by_pc") == {}

    def test_trace_mode_attributes_every_cycle(
        self, testmodel, testmodel_tools
    ):
        observer, simulator, _ = run_traced(
            testmodel, testmodel_tools, "compiled"
        )
        assert observer.wants_cycle_events
        by_pc = observer.metrics.family("sim.cycles_by_pc")
        assert sum(by_pc.values()) == simulator.cycles

    def test_histogram_dict_includes_mean(self, traced):
        observer, _, _ = traced
        payload = observer.metrics.histograms["sim.packet_insns"].to_dict()
        assert payload["mean"] == payload["total"] / payload["count"]


class TestFlightRecorder:
    def test_ring_bounds_and_drops(self):
        recorder = obs.FlightRecorder(capacity=3)
        observer = obs.Observer(sinks=(recorder,), record=False)
        for index in range(5):
            observer.emit("fetch", cycle=index)
        assert len(recorder) == 3
        assert recorder.dropped == 2
        snapshot = recorder.snapshot()
        assert [entry["cycle"] for entry in snapshot] == [2, 3, 4]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            obs.FlightRecorder(capacity=0)

    def test_enable_is_idempotent_and_resizable(self):
        observer = obs.Observer()
        first = observer.enable_flight_recorder(16)
        assert observer.enable_flight_recorder(16) is first
        resized = observer.enable_flight_recorder(8)
        assert resized is not first
        assert observer.flight_recorder() is resized

    def test_timeout_attaches_snapshot(self, testmodel, testmodel_tools):
        from repro.support.errors import SimulationTimeout

        program = testmodel_tools.assembler.assemble_text(SOURCE)
        observer = obs.Observer()
        observer.enable_flight_recorder(8)
        simulator = create_simulator(testmodel, "compiled",
                                     observer=observer)
        simulator.load_program(program)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.run_until(lambda sim: False, max_cycles=5)
        recording = excinfo.value.flight_recording
        assert recording
        assert len(recording) <= 8
        assert all(entry["type"] == "event" for entry in recording)

    def test_survives_checkpoint_restore(self, testmodel,
                                         testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        observer = obs.Observer()
        observer.enable_flight_recorder(64)
        first = create_simulator(testmodel, "compiled",
                                 observer=observer)
        first.load_program(program)
        first.run_to_pc(program.entry + 2)
        checkpoint = first.checkpoint()

        second = create_simulator(testmodel, "compiled",
                                  observer=observer)
        second.load_program(program)
        second.restore(checkpoint)
        second.run(max_cycles=10_000)

        kinds = [entry["kind"]
                 for entry in observer.flight_recorder().snapshot()]
        assert "resilience.checkpoint" in kinds
        assert "resilience.restore" in kinds
        assert kinds.index("resilience.checkpoint") \
            < kinds.index("resilience.restore")
        assert "run.end" in kinds


class TestGlobalObserver:
    def test_install_uninstall(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        observer = obs.install(obs.Observer())
        try:
            simulator = create_simulator(testmodel, "compiled")
            assert simulator.observer is observer
            simulator.load_program(program)
            simulator.run(max_cycles=10_000)
            assert observer.metrics.counter("sim.issue_cycles") > 0
        finally:
            assert obs.uninstall() is observer
        assert obs.get_observer() is None
        later = create_simulator(testmodel, "compiled")
        assert later.observer is None


class TestHotWindowExtents:
    """Packet-extent-aware window grouping in ``hot_region_report``.

    Regression: without extents, a multi-word packet whose last member
    word closes the program was reported with a ``limit`` at its start
    address + 1 -- a consumer promoting the window would silently drop
    the packet's trailing words at the program-end boundary.
    """

    @staticmethod
    def _observer_with(weights):
        observer = obs.Observer(record=False)
        for pc, cycles in weights.items():
            observer.metrics.bump("sim.cycles_by_pc", pc, cycles)
        return observer

    def test_final_packet_extent_reaches_limit(self):
        observer = self._observer_with({0: 60, 5: 40})
        report = obs.hot_region_report(
            observer, max_gap=4, extents={0: 5, 5: 5}
        )
        assert len(report["windows"]) == 1
        window = report["windows"][0]
        assert window["start"] == 0
        assert window["end"] == 5  # last packet *start*, for compat
        assert window["limit"] == 10  # ...but the limit covers it all

    def test_without_extents_multiword_packets_split(self):
        observer = self._observer_with({0: 60, 5: 40})
        report = obs.hot_region_report(observer, max_gap=4)
        assert [w["start"] for w in report["windows"]] == [0, 5]
        assert all(w["limit"] == w["start"] + 1
                   for w in report["windows"])

    def test_gap_measured_from_packet_end(self):
        # Hot packets at 0 (3 words) and 6: gap is 3 words from the
        # first packet's end -- mergeable; from its start it would be
        # 6 words -- split.
        observer = self._observer_with({0: 50, 6: 50})
        merged = obs.hot_region_report(
            observer, max_gap=4, extents={0: 3, 6: 1}
        )
        assert len(merged["windows"]) == 1
        assert merged["windows"][0]["limit"] == 7
        split = obs.hot_region_report(observer, max_gap=4)
        assert len(split["windows"]) == 2
