"""Tests for the generic pipeline driver, with hand-built issue slots."""

import pytest

from repro.machine.control import PipelineControl
from repro.machine.driver import IssueSlot, Pipeline, trap_slot
from repro.machine.state import ProcessorState
from repro.support.errors import SimulationError


@pytest.fixture
def machine(testmodel):
    state = ProcessorState(testmodel)
    control = PipelineControl()
    return state, control


def slot(ops_by_stage, words=1, insn_count=1):
    return IssueSlot(
        ops_by_stage=tuple(tuple(stage) for stage in ops_by_stage),
        words=words,
        insn_count=insn_count,
    )


def empty_stages(depth=4):
    return [() for _ in range(depth)]


class TestAdvanceAndFetch:
    def test_fetch_advances_pc_by_words(self, machine, testmodel):
        state, control = machine
        fetched = []

        def frontend(pc):
            fetched.append(pc)
            return slot(empty_stages(), words=2)

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.step()
        pipe.step()
        assert fetched == [0, 2]
        assert state.pc == 4

    def test_halt_stops_fetching(self, machine, testmodel):
        state, control = machine
        fetched = []

        def frontend(pc):
            fetched.append(pc)
            return slot(empty_stages())

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.step()
        control.halted = True
        pipe.step()
        pipe.step()
        assert fetched == [0]

    def test_stall_inserts_bubbles(self, machine, testmodel):
        state, control = machine
        fetched = []

        def frontend(pc):
            fetched.append(pc)
            return slot(empty_stages())

        pipe = Pipeline(testmodel, state, control, frontend)
        control.stall_cycles = 2
        pipe.step()
        pipe.step()
        pipe.step()
        assert fetched == [0]
        assert pipe.slots[0] is not None
        assert pipe.slots[1] is None and pipe.slots[2] is None

    def test_retirement_counts_instructions(self, machine, testmodel):
        state, control = machine
        pipe = Pipeline(
            testmodel, state, control,
            lambda pc: slot(empty_stages(), insn_count=3),
        )
        for _ in range(6):
            pipe.step()
        # Depth 4: slots fetched at cycles 1..6; two have retired.
        assert pipe.instructions_retired == 6


class TestExecutionOrder:
    def test_ops_run_in_their_stage(self, machine, testmodel):
        state, control = machine
        trace = []
        one = slot([
            (lambda: trace.append("s0"),),
            (lambda: trace.append("s1"),),
            (lambda: trace.append("s2"),),
            (lambda: trace.append("s3"),),
        ])
        issued = iter([one])

        def frontend(pc):
            nxt = next(issued, None)
            if nxt is None:
                control.halted = True
                return None
            return nxt

        pipe = Pipeline(testmodel, state, control, frontend)
        for _ in range(5):
            pipe.step()
        assert trace == ["s0", "s1", "s2", "s3"]

    def test_deeper_stages_execute_first(self, machine, testmodel):
        state, control = machine
        trace = []

        def make(tag):
            return slot([
                (lambda: trace.append((tag, 0)),),
                (lambda: trace.append((tag, 1)),),
                (), (),
            ])

        slots = iter([make("a"), make("b")])

        def frontend(pc):
            nxt = next(slots, None)
            if nxt is None:
                control.halted = True
            return nxt

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.step()  # a at stage 0
        pipe.step()  # a at stage 1, b at stage 0: a first (deeper)
        assert trace == [("a", 0), ("a", 1), ("b", 0)]


class TestFlush:
    def test_flush_squashes_younger_same_cycle(self, machine, testmodel):
        state, control = machine
        executed = []

        def flusher():
            executed.append("flusher")
            control.request_flush()

        flush_slot = slot([(), (), (flusher,), ()])
        victim = slot([
            (lambda: executed.append("victim0"),),
            (lambda: executed.append("victim1"),),
            (lambda: executed.append("victim2"),),
            (),
        ])
        feed = iter([flush_slot, victim, victim])

        def frontend(pc):
            nxt = next(feed, None)
            if nxt is None:
                control.halted = True
            return nxt

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.step()  # flusher@0
        pipe.step()  # flusher@1, victim@0 executes
        pipe.step()  # flusher@2 flushes; victims squashed pre-execution
        assert "flusher" in executed
        assert "victim1" not in executed
        assert "victim2" not in executed
        assert pipe.slots[0] is None and pipe.slots[1] is None

    def test_flush_flag_cleared_after_cycle(self, machine, testmodel):
        state, control = machine

        def flusher():
            control.request_flush()

        feed = iter([slot([(flusher,), (), (), ()])])

        def frontend(pc):
            nxt = next(feed, None)
            if nxt is None:
                control.halted = True
            return nxt

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.step()
        assert control.flush_below == -1


class TestTrapSlots:
    def test_trap_fires_when_reaching_execute_stage(self, machine, testmodel):
        state, control = machine
        pipe = Pipeline(
            testmodel, state, control,
            lambda pc: trap_slot(testmodel, "bad fetch at 0x%x" % pc),
        )
        pipe.step()  # stage 0 (FE)
        pipe.step()  # stage 1 (DE)
        with pytest.raises(SimulationError):
            pipe.step()  # stage 2 (EX): trap fires

    def test_trap_squashed_by_halt_never_fires(self, machine, testmodel):
        state, control = machine

        def halter():
            control.request_halt()

        feed = [slot([(), (), (halter,), ()])]

        def frontend(pc):
            if feed:
                return feed.pop()
            return trap_slot(testmodel, "should be squashed")

        pipe = Pipeline(testmodel, state, control, frontend)
        cycles = pipe.run(max_cycles=100)
        assert control.halted
        assert cycles <= 100  # and no SimulationError was raised


class TestRun:
    def test_run_drains_after_halt(self, machine, testmodel):
        state, control = machine
        executed = []

        def halter():
            control.request_halt()

        feed = iter([
            slot([(), (), (lambda: executed.append("a"),), ()]),
            slot([(), (), (halter,), ()]),
        ])

        def frontend(pc):
            return next(feed, None) or trap_slot(testmodel, "off the end")

        pipe = Pipeline(testmodel, state, control, frontend)
        pipe.run(max_cycles=100)
        assert executed == ["a"]
        assert pipe.drained

    def test_run_raises_on_cycle_limit(self, machine, testmodel):
        state, control = machine
        pipe = Pipeline(
            testmodel, state, control,
            lambda pc: slot(empty_stages()),
        )
        with pytest.raises(SimulationError):
            pipe.run(max_cycles=10)

    def test_watcher_called_every_cycle(self, machine, testmodel):
        state, control = machine
        seen = []
        pipe = Pipeline(
            testmodel, state, control,
            lambda pc: slot(empty_stages()),
            watcher=lambda p: seen.append(p.cycles),
        )
        for _ in range(3):
            pipe.step()
        assert seen == [1, 2, 3]

    def test_reset(self, machine, testmodel):
        state, control = machine
        pipe = Pipeline(
            testmodel, state, control, lambda pc: slot(empty_stages())
        )
        pipe.step()
        pipe.reset()
        assert pipe.cycles == 0
        assert pipe.drained
