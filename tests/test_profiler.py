"""Tests for the simulator-based profiler."""

import math

import pytest

from repro.sim import create_simulator
from repro.tools.profiler import Profiler


SOURCE = """
        .entry start
start:  ldi r1, 4
        ldi r2, -1
loop:   add r3, r3, r1
        add r1, r1, r2
        brnz r1, loop
        st r3, 0
        halt
"""


@pytest.fixture
def profiled(testmodel, testmodel_tools):
    program = testmodel_tools.assembler.assemble_text(SOURCE)
    simulator = create_simulator(testmodel, "compiled")
    simulator.load_program(program)
    profiler = Profiler(simulator)
    simulator.run(max_cycles=10_000)
    return profiler.report(), program, simulator


class TestProfiler:
    def test_loop_body_is_hottest(self, profiled):
        report, _, _ = profiled
        hottest_pc, hottest_count = report.hottest[0]
        assert hottest_pc in (2, 3, 4)  # the loop body
        assert hottest_count == 4

    def test_prologue_fetched_once(self, profiled):
        report, _, _ = profiled
        assert report.fetch_counts[0] == 1
        assert report.fetch_counts[1] == 1

    def test_cycle_accounting(self, profiled):
        report, _, simulator = profiled
        assert report.total_cycles == simulator.cycles
        assert report.issue_cycles + report.bubble_cycles \
            == report.total_cycles
        assert report.bubble_cycles > 0  # flushes and drain

    def test_annotated_listing(self, profiled, testmodel_tools):
        report, program, _ = profiled
        lines = report.annotate(testmodel_tools.disassembler, program,
                                limit=3)
        assert len(lines) == 3
        assert "add" in lines[0] or "brnz" in lines[0]

    def test_profile_does_not_change_results(self, testmodel,
                                             testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        plain = create_simulator(testmodel, "compiled")
        plain.load_program(program)
        plain.run(max_cycles=10_000)

        profiled_sim = create_simulator(testmodel, "compiled")
        profiled_sim.load_program(program)
        Profiler(profiled_sim)
        profiled_sim.run(max_cycles=10_000)

        assert plain.state.differences(profiled_sim.state) == []
        assert plain.cycles == profiled_sim.cycles

    def test_works_on_interpretive(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(SOURCE)
        simulator = create_simulator(testmodel, "interpretive")
        simulator.load_program(program)
        profiler = Profiler(simulator)
        simulator.run(max_cycles=10_000)
        report = profiler.report()
        assert report.issue_cycles > 0

    def test_static_kind_profiles_identically(self, testmodel,
                                              testmodel_tools, profiled):
        compiled_report, program, _ = profiled
        simulator = create_simulator(testmodel, "static")
        simulator.load_program(program)
        profiler = Profiler(simulator)
        simulator.run(max_cycles=10_000)
        report = profiler.report()
        assert report.fetch_counts == compiled_report.fetch_counts
        assert report.issue_cycles == compiled_report.issue_cycles
        assert report.bubble_cycles == compiled_report.bubble_cycles
        assert report.total_cycles == simulator.cycles

    def test_bubble_attribution(self, profiled):
        report, _, _ = profiled
        assert sum(report.bubbles_by_reason.values()) \
            == report.bubble_cycles
        assert report.bubbles_by_reason.get("drain", 0) > 0

    def test_packet_statistics(self, profiled):
        report, _, _ = profiled
        assert sum(report.packet_sizes.values()) == report.issue_cycles
        assert sum(
            size * count for size, count in report.packet_sizes.items()
        ) == report.instructions_issued
        assert not math.isnan(report.mean_packet_size)
        assert report.mean_packet_size >= 1.0
