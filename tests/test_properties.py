"""Whole-stack property tests.

These are the heavy invariants:

* any synthetic program agrees bit-for-bit across simulation levels and
  matches its generated checksum,
* decode is total-or-error and re-encode is a fixed point on random
  words, for every shipped model,
* randomly generated behaviour expressions evaluate identically through
  the AST interpreter and the Python code generator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_synthetic
from repro.behavior import ast as bast
from repro.behavior.codegen import BehaviorCodegen
from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.coding.decoder import InstructionDecoder
from repro.coding.encoder import InstructionEncoder
from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.models import load_model
from repro.sim import create_simulator
from repro.support.errors import DecodeError


class TestCrossSimulatorFuzz:
    @settings(max_examples=15, deadline=None)
    @given(
        words=st.integers(min_value=24, max_value=80),
        density=st.sampled_from([0.0, 0.1, 0.3]),
        iterations=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=1, max_value=10_000),
    )
    def test_tinydsp_synthetic_agreement(self, words, density, iterations,
                                         seed):
        app = build_synthetic("tinydsp", target_words=words,
                              branch_density=density,
                              loop_iterations=iterations, seed=seed)
        model = load_model("tinydsp")
        from repro.api import build_toolset

        program = app.assemble(build_toolset(model))
        reference = None
        for kind in ("interpretive", "compiled", "static", "unfolded"):
            simulator = create_simulator(model, kind)
            simulator.load_program(program)
            stats = simulator.run(max_cycles=2_000_000)
            app.verify(simulator.state)
            signature = (stats.cycles, simulator.state.snapshot())
            if reference is None:
                reference = signature
            else:
                assert signature == reference, kind

    @settings(max_examples=10, deadline=None)
    @given(
        words=st.integers(min_value=24, max_value=64),
        density=st.sampled_from([0.0, 0.2]),
        seed=st.integers(min_value=1, max_value=10_000),
    )
    def test_c62x_synthetic_agreement(self, words, density, seed):
        app = build_synthetic("c62x", target_words=words,
                              branch_density=density, loop_iterations=2,
                              seed=seed)
        model = load_model("c62x")
        from repro.api import build_toolset

        program = app.assemble(build_toolset(model))
        reference = None
        for kind in ("interpretive", "compiled", "unfolded_static"):
            simulator = create_simulator(model, kind)
            simulator.load_program(program)
            stats = simulator.run(max_cycles=2_000_000)
            app.verify(simulator.state)
            signature = (stats.cycles, simulator.state.snapshot())
            if reference is None:
                reference = signature
            else:
                assert signature == reference, kind


class TestDecodeEncodeFixpoint:
    @pytest.mark.parametrize("model_name", ["tinydsp", "c54x", "c62x"])
    @settings(max_examples=60, deadline=None)
    @given(word=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_random_words(self, model_name, word):
        model = load_model(model_name)
        word &= (1 << model.word_size) - 1
        decoder = InstructionDecoder(model)
        encoder = InstructionEncoder(model)
        try:
            node = decoder.decode(word)
        except DecodeError:
            return
        rebuilt = encoder.encode(encoder.spec_from_decoded(node))
        # Don't-care pad bits may normalise to zero; the *decoded
        # meaning* must be identical and re-encoding must be stable.
        again = decoder.decode(rebuilt)
        assert again.describe() == node.describe()
        assert encoder.encode(encoder.spec_from_decoded(again)) == rebuilt


# -- random behaviour expressions --------------------------------------------


def _leaf():
    return st.one_of(
        st.integers(min_value=-128, max_value=127).map(bast.IntLit),
        st.sampled_from(["src1", "src2", "mode"]).map(bast.Name),
    )


def _exprs():
    safe_binops = ["+", "-", "*", "&", "|", "^", "==", "!=", "<", ">",
                   "<=", ">=", "&&", "||"]
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.tuples(st.sampled_from(safe_binops), children, children).map(
                lambda t: bast.Binary(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(["-", "~", "!"]), children).map(
                lambda t: bast.Unary(t[0], t[1])
            ),
            st.tuples(children, st.integers(0, 7)).map(
                lambda t: bast.Binary("<<", t[0], bast.IntLit(t[1]))
            ),
            st.tuples(children, st.integers(0, 7)).map(
                lambda t: bast.Binary(">>", t[0], bast.IntLit(t[1]))
            ),
            st.tuples(children, children, children).map(
                lambda t: bast.Ternary(t[0], t[1], t[2])
            ),
        ),
        max_leaves=12,
    )


class TestBackendAgreementFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        expr=_exprs(),
        a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_random_expressions(self, testmodel, expr, a, b):
        from repro.coding.encoder import OperandSpec

        spec = OperandSpec("insn", fields={"mode": 0}, children={
            "op": OperandSpec("add", children={
                "dst": OperandSpec("reg", fields={"idx": 1}),
                "src1": OperandSpec("reg", fields={"idx": 2}),
                "src2": OperandSpec("reg", fields={"idx": 3}),
            })
        })
        word = InstructionEncoder(testmodel).encode(spec)
        node = InstructionDecoder(testmodel).decode(word).children["op"]
        statements = (bast.Assign(bast.Name("dst"), "=", expr),)

        ev_state = ProcessorState(testmodel)
        ev_state.write_register("R", 2, a)
        ev_state.write_register("R", 3, b)
        execute_behavior(
            statements, node,
            EvalContext(ev_state, PipelineControl(), testmodel),
        )

        cg_state = ProcessorState(testmodel)
        cg_state.write_register("R", 2, a)
        cg_state.write_register("R", 3, b)

        class _B:
            pass

        behavior = _B()
        behavior.statements = statements
        fn = BehaviorCodegen(testmodel).compile_function(
            "fuzz", [(node, behavior)], cg_state, PipelineControl()
        )
        fn()
        assert ev_state.R[1] == cg_state.R[1]
