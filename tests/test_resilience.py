"""Tests for the resilience layer: write guard, watchdog, fault harness.

The load-bearing property: a self-modifying program must reach the same
final state on every compiled simulator kind (under the ``recompile``
and ``interpret`` degradation policies) as on the interpretive
reference subjected to the *same* injected fault -- and must fail fast
with a typed :class:`StaleTableError` under the ``error`` policy.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.resilience import FaultInjector, RunBudget
from repro.sim import SIM_KINDS, create_simulator
from repro.simcc.cache import SimulationCache
from repro.support.errors import (
    DecodeError,
    ReproError,
    SimulationError,
    SimulationTimeout,
    StaleTableError,
)

COMPILED_KINDS = tuple(k for k in SIM_KINDS if k != "interpretive")
TABLE_KINDS = ("compiled", "static", "unfolded", "unfolded_static")

# A loop whose body is patched mid-run: the instruction at ``patch:``
# is rewritten from ``ldi r3, 1`` to ``ldi r3, 2`` after a few
# iterations, changing the accumulated result in dmem[7].
SMC_SOURCE = """
        ldi r1, 4
        ldi r5, 255
loop:   add r2, r2, r1
patch:  ldi r3, 1
        add r2, r2, r3
        add r1, r1, r5
        brnz r1, loop
        st r2, 7
        halt
"""

PATCH_CYCLE = 6


@pytest.fixture(scope="module")
def smc_program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text(SMC_SOURCE, name="smc")


@pytest.fixture(scope="module")
def patch_word(testmodel_tools):
    """The encoding of the replacement instruction ``ldi r3, 2``."""
    patched = testmodel_tools.assembler.assemble_text("ldi r3, 2")
    return patched.segments_in("pmem")[0].words[0]


def _run_with_patch(model, kind, policy, program, word, observer=None,
                    cache=None, repatch=None, backend="auto"):
    simulator = create_simulator(
        model, kind, observer=observer, cache=cache, on_self_modify=policy,
        backend=backend,
    )
    simulator.load_program(program)
    injector = FaultInjector(observer=observer)
    patch_pc = program.symbols["patch"]
    plan = [
        (PATCH_CYCLE,
         lambda sim: injector.write_program_word(sim, patch_pc, word)),
    ]
    if repatch is not None:
        cycle, value = repatch
        plan.append(
            (cycle,
             lambda sim: injector.write_program_word(sim, patch_pc, value))
        )
    stats = injector.run_with_faults(simulator, plan, max_cycles=10_000)
    return simulator, stats


@pytest.fixture(scope="module")
def smc_reference(testmodel, smc_program, patch_word):
    """Interpretive run with the same injected patch: the golden state."""
    simulator, stats = _run_with_patch(
        testmodel, "interpretive", "interpret", smc_program, patch_word
    )
    snapshot = simulator.state.snapshot()
    # The patch must actually change the result, or the agreement tests
    # below would pass vacuously.
    unpatched = create_simulator(testmodel, "interpretive")
    unpatched.load_program(smc_program)
    unpatched.run(max_cycles=10_000)
    assert snapshot != unpatched.state.snapshot()
    return stats.cycles, snapshot


class TestSelfModifyingCode:
    @pytest.mark.parametrize("policy", ["recompile", "interpret"])
    @pytest.mark.parametrize("kind", COMPILED_KINDS)
    def test_degraded_run_matches_interpretive(
        self, testmodel, smc_program, patch_word, smc_reference,
        kind, policy,
    ):
        ref_cycles, ref_snapshot = smc_reference
        simulator, stats = _run_with_patch(
            testmodel, kind, policy, smc_program, patch_word
        )
        assert stats.cycles == ref_cycles
        assert simulator.state.snapshot() == ref_snapshot
        guard = simulator.guard
        assert guard.stats["self_mod_writes"] == 1
        assert guard.stats["invalidated_packets"] >= 1
        if policy == "recompile":
            assert guard.stats["recompiled_packets"] >= 1
            assert guard.stats["interpreted_fetches"] == 0
        else:
            assert guard.stats["interpreted_fetches"] >= 1
            assert guard.stats["recompiled_packets"] == 0

    @pytest.mark.parametrize("policy", ["recompile", "interpret"])
    @pytest.mark.parametrize("kind", TABLE_KINDS)
    def test_native_backend_demotes_patched_packet(
        self, testmodel, smc_program, patch_word, smc_reference,
        kind, policy,
    ):
        """Under ``backend="native"`` the guard must additionally demote
        the patched packet out of burst execution: its compiled artifact
        still encodes the pre-patch micro-ops."""
        from repro.simcc.native import NativePipeline, native_available

        if not native_available():
            pytest.skip("no usable C compiler on the host")
        ref_cycles, ref_snapshot = smc_reference
        simulator, stats = _run_with_patch(
            testmodel, kind, policy, smc_program, patch_word,
            backend="native",
        )
        assert stats.cycles == ref_cycles
        assert simulator.state.snapshot() == ref_snapshot
        engine = simulator.engine
        assert isinstance(engine, NativePipeline)
        patch_pc = smc_program.symbols["patch"]
        assert patch_pc in engine._python_pcs
        assert simulator.guard.stats["invalidated_packets"] >= 1

    @pytest.mark.parametrize("kind", TABLE_KINDS)
    def test_error_policy_raises_typed(
        self, testmodel, smc_program, patch_word, kind
    ):
        simulator = create_simulator(testmodel, kind, on_self_modify="error")
        simulator.load_program(smc_program)
        injector = FaultInjector()
        patch_pc = smc_program.symbols["patch"]
        with pytest.raises(StaleTableError) as excinfo:
            injector.run_with_faults(
                simulator,
                [(PATCH_CYCLE,
                  lambda sim: injector.write_program_word(
                      sim, patch_pc, patch_word))],
                max_cycles=10_000,
            )
        assert excinfo.value.address == patch_pc
        assert patch_pc in excinfo.value.pcs
        assert isinstance(excinfo.value, SimulationError)

    @pytest.mark.parametrize("kind", ["static", "unfolded_static"])
    def test_repeat_patch_of_stale_packet(
        self, testmodel, testmodel_tools, smc_program, patch_word, kind
    ):
        """A second write to an already-stale packet must still flush
        engine-side memoisation (interned static transitions)."""
        word_three = testmodel_tools.assembler.assemble_text(
            "ldi r3, 3"
        ).segments_in("pmem")[0].words[0]
        reference, ref_stats = _run_with_patch(
            testmodel, "interpretive", "interpret", smc_program, patch_word,
            repatch=(PATCH_CYCLE + 10, word_three),
        )
        simulator, stats = _run_with_patch(
            testmodel, kind, "interpret", smc_program, patch_word,
            repatch=(PATCH_CYCLE + 10, word_three),
        )
        assert stats.cycles == ref_stats.cycles
        assert simulator.state.snapshot() == reference.state.snapshot()

    def test_data_write_into_program_memory_is_not_self_modifying(
        self, testmodel, smc_program
    ):
        """Stores outside every known packet (scratch data placed in
        program memory) must not trip the guard, even under ``error``."""
        simulator = create_simulator(
            testmodel, "compiled", on_self_modify="error"
        )
        simulator.load_program(smc_program)
        simulator.state.write_memory("pmem", 200, 0x1234)
        assert simulator.guard.stats["program_writes"] == 1
        assert simulator.guard.stats["self_mod_writes"] == 0
        stats = simulator.run(max_cycles=10_000)
        assert stats.cycles > 0

    def test_recompile_goes_through_cache(
        self, testmodel, smc_program, patch_word, tmp_path
    ):
        cache = SimulationCache(tmp_path / "simtab")
        simulator, _ = _run_with_patch(
            testmodel, "compiled", "recompile", smc_program, patch_word,
            cache=cache,
        )
        # Initial table plus at least one incremental patch table.
        assert cache.stats["stores"] >= 2
        assert simulator.guard.stats["recompiled_packets"] >= 1

    def test_guard_metrics_reach_observer(
        self, testmodel, smc_program, patch_word
    ):
        observer = obs.Observer()
        _run_with_patch(
            testmodel, "compiled", "interpret", smc_program, patch_word,
            observer=observer,
        )
        counters = observer.snapshot()["counters"]
        assert counters["resilience.self_mod_writes"] >= 1
        assert counters["resilience.invalidated_packets"] >= 1
        assert counters["resilience.interpreted_fetches"] >= 1
        assert counters["resilience.faults_injected"] >= 1
        kinds = [event.kind for event in observer.events]
        assert obs.SELF_MODIFY in kinds
        assert obs.GUARD_RESOLVE in kinds
        assert obs.FAULT in kinds

    def test_unknown_policy_rejected(self, testmodel):
        simulator = create_simulator(testmodel, "compiled")
        with pytest.raises(ReproError, match="policy"):
            simulator.enable_write_guard("panic")

    def test_unsupported_kind_has_clear_error(self, testmodel):
        """The base class refuses kinds without a guard coupling."""
        from repro.sim.base import Simulator

        simulator = Simulator(testmodel)
        with pytest.raises(SimulationError, match="write guard"):
            simulator._guard_target(None)


class TestGuardElision:
    """Proof-gated elision of the guard's fetch interposer.

    The absint store-reachability proof shows no packet of the SMC test
    program can store into program memory from *generated* code (its
    only store targets dmem), so the armed guard skips the front-end
    wrapper entirely -- and lazily re-installs it the moment an
    out-of-band store (fault injection here) touches a covered address.
    """

    @pytest.mark.parametrize("kind", ["unfolded", "unfolded_static"])
    def test_proof_elides_fetch_interposer(self, testmodel, smc_program,
                                           kind):
        observer = obs.Observer()
        simulator = create_simulator(
            testmodel, kind, observer=observer, on_self_modify="error"
        )
        simulator.load_program(smc_program)
        guard = simulator.guard
        assert guard.elided
        assert guard.stats["elisions"] == 1
        assert guard.stats["rearms"] == 0
        # The engine's front-end is the unwrapped original.
        frontend = simulator.engine._frontend
        assert frontend.__name__ != "guarded_frontend"
        counters = observer.snapshot()["counters"]
        assert counters["resilience.guard_elisions"] == 1
        assert obs.GUARD_ELIDE in [e.kind for e in observer.events]

    def test_elided_run_is_bit_exact_and_uninstrumented(
        self, testmodel, smc_program
    ):
        reference = create_simulator(testmodel, "interpretive")
        reference.load_program(smc_program)
        reference.run(max_cycles=10_000)

        guarded = create_simulator(testmodel, "unfolded",
                                   on_self_modify="error")
        guarded.load_program(smc_program)
        stats = guarded.run(max_cycles=10_000)
        assert guarded.guard.elided  # never re-armed: zero instrumentation
        assert guarded.guard.stats["rearms"] == 0
        assert guarded.guard.stats["self_mod_writes"] == 0
        assert guarded.state.snapshot() == reference.state.snapshot()
        assert stats.cycles == reference.cycles

    def test_cached_sequenced_table_carries_the_proof(
        self, testmodel, smc_program, tmp_path
    ):
        """Portable tables persist proofs at every level, so a cached
        level-2 simulator elides too."""
        cache = SimulationCache(tmp_path / "simtab")
        simulator = create_simulator(testmodel, "compiled", cache=cache,
                                     on_self_modify="error")
        simulator.load_program(smc_program)
        assert simulator.guard.elided
        # And again from disk: the proof round-tripped the payload.
        reloaded = create_simulator(
            testmodel, "compiled", cache=SimulationCache(cache.root),
            on_self_modify="error",
        )
        reloaded.load_program(smc_program)
        assert reloaded.guard.elided

    def test_proofless_table_stays_conservative(self, testmodel,
                                                smc_program):
        """The cacheless sequenced path compiles without lowered IR, so
        no proof exists and the full interposer stays."""
        simulator = create_simulator(testmodel, "compiled",
                                     on_self_modify="error")
        simulator.load_program(smc_program)
        assert not simulator.guard.elided
        assert simulator.guard.stats["elisions"] == 0
        assert simulator.engine._frontend.__name__ == "guarded_frontend"

    def test_interpretive_kind_never_elides(self, testmodel, smc_program):
        simulator = create_simulator(testmodel, "interpretive",
                                     on_self_modify="interpret")
        simulator.load_program(smc_program)
        assert not simulator.guard.elided
        assert simulator.guard.stats["elisions"] == 0

    def test_external_patch_rearms_then_degrades(
        self, testmodel, smc_program, patch_word, smc_reference
    ):
        """Fault injection into an elided guard: the interposer comes
        back before any stale fetch, so the run stays bit-identical to
        the never-elided PR 5 behaviour."""
        ref_cycles, ref_snapshot = smc_reference
        observer = obs.Observer()
        simulator, stats = _run_with_patch(
            testmodel, "unfolded", "interpret", smc_program, patch_word,
            observer=observer,
        )
        guard = simulator.guard
        assert guard.stats["elisions"] == 1
        assert guard.stats["rearms"] == 1
        assert not guard.elided
        assert simulator.engine._frontend.__name__ == "guarded_frontend"
        assert stats.cycles == ref_cycles
        assert simulator.state.snapshot() == ref_snapshot
        counters = observer.snapshot()["counters"]
        assert counters["resilience.guard_rearms"] == 1
        assert obs.GUARD_REARM in [e.kind for e in observer.events]

    def test_data_store_in_program_memory_does_not_rearm(
        self, testmodel, smc_program
    ):
        """A store outside every packet is data, not self-modification:
        the elision must survive it."""
        simulator = create_simulator(testmodel, "unfolded",
                                     on_self_modify="error")
        simulator.load_program(smc_program)
        simulator.state.write_memory("pmem", 200, 0x1234)
        assert simulator.guard.elided
        assert simulator.guard.stats["rearms"] == 0
        assert simulator.guard.stats["program_writes"] == 1


# A testmodel variant whose ``stp`` instruction stores a register into
# program memory: programs using it are provably self-modify-capable,
# so the guard keeps its full fetch interposer.
SMC_CAPABLE_SOURCE = None  # built lazily from the conftest source


def _smc_capable_model():
    from repro.lisa.semantics import compile_source
    from tests.conftest import TESTMODEL_SOURCE

    source = TESTMODEL_SOURCE.replace(
        "nop || add || ldi || st || brnz",
        "nop || add || ldi || st || stp || brnz",
    ).replace(
        "OPERATION brnz IN pipe.EX {",
        """OPERATION stp IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL addr; }
    CODING { 0b0110 src addr[6] 0bxx }
    SYNTAX { "stp" src "," addr }
    BEHAVIOR { pmem[addr] = src; }
}

OPERATION brnz IN pipe.EX {""",
        1,
    )
    return compile_source(source, "smcmodel.lisa")


class TestProofGatedElision:
    """Programs that *can* store to program memory keep the full guard."""

    # The program overwrites the nop at ``target:`` with a nop encoding
    # (word 0) loaded through r1 -- a genuine self-modifying store whose
    # effect happens to be idempotent, so the run is comparable across
    # kinds without decoding surprises.
    SELF_PATCH = """
        ldi r1, 0
        stp r1, target
        ldi r2, 7
target: nop
        st r2, 7
        halt
"""

    @pytest.fixture(scope="class")
    def smc_model(self):
        return _smc_capable_model()

    @pytest.fixture(scope="class")
    def smc_tools(self, smc_model):
        from repro.api import build_toolset

        return build_toolset(smc_model)

    @pytest.fixture(scope="class")
    def self_patch_program(self, smc_tools):
        return smc_tools.assembler.assemble_text(
            self.SELF_PATCH, name="selfpatch"
        )

    def test_store_capable_program_is_not_elided(
        self, smc_model, self_patch_program
    ):
        simulator = create_simulator(smc_model, "unfolded",
                                     on_self_modify="interpret")
        simulator.load_program(self_patch_program)
        guard = simulator.guard
        assert not guard.elided
        assert guard.stats["elisions"] == 0
        assert simulator.engine._frontend.__name__ == "guarded_frontend"
        # The proof names the reason: pmem is a reachable store target.
        from repro.analysis import absint

        targets = absint.table_store_resources(simulator.table, smc_model)
        assert "pmem" in targets

    @pytest.mark.parametrize("policy", ["recompile", "interpret"])
    def test_self_patch_matches_interpretive(
        self, smc_model, self_patch_program, policy
    ):
        reference = create_simulator(smc_model, "interpretive",
                                     on_self_modify="interpret")
        reference.load_program(self_patch_program)
        reference.run(max_cycles=10_000)
        assert reference.guard.stats["self_mod_writes"] == 1

        simulator = create_simulator(smc_model, "unfolded",
                                     on_self_modify=policy)
        simulator.load_program(self_patch_program)
        stats = simulator.run(max_cycles=10_000)
        assert simulator.guard.stats["self_mod_writes"] == 1
        assert simulator.guard.stats["elisions"] == 0
        assert simulator.state.snapshot() == reference.state.snapshot()
        assert stats.cycles == reference.cycles

    def test_self_patch_error_policy_raises(
        self, smc_model, self_patch_program
    ):
        simulator = create_simulator(smc_model, "unfolded",
                                     on_self_modify="error")
        simulator.load_program(self_patch_program)
        assert not simulator.guard.elided
        with pytest.raises(StaleTableError):
            simulator.run(max_cycles=10_000)


class TestWatchdog:
    def test_run_raises_typed_timeout(self, testmodel, smc_program):
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.run(max_cycles=5)
        exc = excinfo.value
        assert isinstance(exc, SimulationError)  # old except clauses work
        assert exc.budget == "cycles"
        assert exc.limit == 5
        assert exc.cycles == 5
        assert exc.pc is not None
        assert exc.checkpoint is not None
        assert exc.checkpoint.cycles == 5

    def test_run_until_timeout_is_typed_and_resumable(
        self, testmodel, smc_program
    ):
        simulator = create_simulator(testmodel, "static")
        simulator.load_program(smc_program)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.run_until(lambda sim: False, max_cycles=7)
        exc = excinfo.value
        assert exc.cycles == 7
        assert exc.pc is not None
        assert exc.checkpoint is not None and exc.checkpoint.cycles == 7

    def test_wall_clock_budget(self, testmodel, smc_program):
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        budget = RunBudget(max_wall_seconds=0.0, check_interval=4)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.run(max_cycles=10_000, budget=budget)
        exc = excinfo.value
        assert exc.budget == "wall"
        assert exc.limit == 0.0
        assert exc.checkpoint is not None

    def test_budget_cycle_limit_tighter_than_max_cycles(
        self, testmodel, smc_program
    ):
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        with pytest.raises(SimulationTimeout) as excinfo:
            simulator.run(
                max_cycles=10_000, budget=RunBudget(max_cycles=6)
            )
        assert excinfo.value.cycles == 6

    def test_unbudgeted_run_completes_unchanged(self, testmodel, smc_program):
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        plain = simulator.run(max_cycles=10_000)
        simulator.reset()
        budgeted = simulator.run(
            max_cycles=10_000, budget=RunBudget(max_cycles=10_000)
        )
        assert budgeted.cycles == plain.cycles
        assert budgeted.instructions == plain.instructions

    def test_timeout_metrics(self, testmodel, smc_program):
        observer = obs.Observer()
        simulator = create_simulator(
            testmodel, "compiled", observer=observer
        )
        simulator.load_program(smc_program)
        with pytest.raises(SimulationTimeout):
            simulator.run(max_cycles=3)
        snapshot = observer.snapshot()
        assert snapshot["counters"]["resilience.timeouts"] == 1
        families = snapshot["families"]
        assert families["resilience.timeouts_by_budget"]["cycles"] == 1


class TestErrorAnnotation:
    BAD_BRANCH = """
        ldi r1, 1
        brnz r1, 40
        halt
"""

    @pytest.mark.parametrize("kind", ["interpretive", "compiled", "static"])
    def test_mid_run_trap_carries_cycle_and_pc(
        self, testmodel, testmodel_tools, kind
    ):
        """A branch into unknown memory traps with position context."""
        program = testmodel_tools.assembler.assemble_text(self.BAD_BRANCH)
        simulator = create_simulator(testmodel, kind)
        simulator.load_program(program)
        with pytest.raises(SimulationError) as excinfo:
            simulator.run(max_cycles=10_000)
        exc = excinfo.value
        assert not isinstance(exc, SimulationTimeout)
        assert exc.sim_cycles is not None and exc.sim_cycles > 0
        assert exc.sim_pc is not None
        assert "cycle" in str(exc)

    def test_annotation_is_idempotent(self):
        from repro.support.errors import annotate_simulation_error

        exc = SimulationError("boom")
        annotate_simulation_error(exc, cycles=10, pc=4)
        annotate_simulation_error(exc, cycles=99, pc=9)
        assert exc.sim_cycles == 10
        assert str(exc).count("cycle") == 1

    def test_run_until_annotates_step_errors(
        self, testmodel, testmodel_tools
    ):
        program = testmodel_tools.assembler.assemble_text(self.BAD_BRANCH)
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(program)
        with pytest.raises(SimulationError) as excinfo:
            simulator.run_until(lambda sim: False, max_cycles=10_000)
        assert excinfo.value.sim_cycles is not None


class TestFaultInjector:
    def test_register_bit_flip_changes_result(
        self, testmodel, smc_program
    ):
        baseline = create_simulator(testmodel, "compiled")
        baseline.load_program(smc_program)
        baseline.run(max_cycles=10_000)

        injector = FaultInjector()
        victim = create_simulator(testmodel, "compiled")
        victim.load_program(smc_program)
        injector.run_with_faults(
            victim,
            [(8, lambda sim: injector.flip_register_bit(
                sim, "R", bit=0, index=2))],
            max_cycles=10_000,
        )
        assert victim.state.snapshot() != baseline.state.snapshot()
        assert injector.log[0]["fault"] == "register_bit_flip"

    def test_injection_is_deterministic(self, testmodel, smc_program):
        def one_run():
            injector = FaultInjector()
            simulator = create_simulator(testmodel, "static")
            simulator.load_program(smc_program)
            stats = injector.run_with_faults(
                simulator,
                [(5, lambda sim: injector.flip_memory_bit(
                    sim, "dmem", address=3, bit=2))],
                max_cycles=10_000,
            )
            return stats.cycles, simulator.state.snapshot(), injector.log

        first = one_run()
        second = one_run()
        assert first == second

    def test_decode_fault_scoped_to_address(self, testmodel, smc_program):
        injector = FaultInjector()
        simulator = create_simulator(testmodel, "interpretive")
        simulator.load_program(smc_program)
        with injector.decode_fault(address=smc_program.symbols["patch"]):
            with pytest.raises(SimulationError) as excinfo:
                simulator.run(max_cycles=10_000)
        assert "injected decode fault" in str(excinfo.value)
        assert excinfo.value.sim_cycles is not None
        assert any(f["fault"] == "decode_fault" for f in injector.log)
        # the patch is gone once the context exits
        simulator.reset()
        simulator.run(max_cycles=10_000)

    def test_decode_fault_raises_outside_simulation(self, testmodel_tools):
        injector = FaultInjector()
        with injector.decode_fault():
            with pytest.raises(DecodeError):
                testmodel_tools.decoder.decode(0x0000, address=0)

    def test_compile_fault_fails_table_build(
        self, testmodel, smc_program
    ):
        injector = FaultInjector()
        simulator = create_simulator(testmodel, "compiled")
        with injector.compile_fault():
            with pytest.raises(ReproError, match="injected compile fault"):
                simulator.load_program(smc_program)
        assert injector.log[-1]["fault"] == "compile_fault"
        # compilation works again once the context exits
        simulator.load_program(smc_program)
        simulator.run(max_cycles=10_000)

    def test_plan_actions_fire_at_exact_cycles(self, testmodel, smc_program):
        seen = []
        injector = FaultInjector()
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        injector.run_with_faults(
            simulator,
            [(4, lambda sim: seen.append(sim.cycles)),
             (9, lambda sim: seen.append(sim.cycles))],
            max_cycles=10_000,
        )
        assert seen == [4, 9]


def _plan_victim_main(conn, plan, attempt, resume_cycles):
    """Child-process body for process-kill plan tests (module level so
    the spawn start method can import it).  Reports the compiled plan
    size, runs it, and -- if the plan lets it live -- the final cycle
    count.  Messages go over a Pipe, not a Queue: Connection.send
    writes synchronously, so a plan that SIGKILLs the process cannot
    outrun a message already sent (a Queue's feeder thread can lose
    the race)."""
    from tests.conftest import TESTMODEL_SOURCE

    from repro.api import build_toolset
    from repro.lisa.semantics import compile_source

    model = compile_source(TESTMODEL_SOURCE, "testmodel.lisa")
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(SMC_SOURCE, name="smc")
    injector = FaultInjector()
    compiled = injector.compile_plan(
        plan, attempt=attempt, resume_cycles=resume_cycles
    )
    conn.send(("compiled", len(compiled)))
    simulator = create_simulator(model, "compiled")
    simulator.load_program(program)
    stats = injector.run_with_faults(
        simulator, compiled, max_cycles=10_000
    )
    conn.send(("finished", stats.cycles))
    conn.close()


class TestFaultPlans:
    """The serialisable plan format the service ships to workers."""

    def _run_victim(self, plan, attempt=1, resume_cycles=0):
        import multiprocessing

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        import time

        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_plan_victim_main,
            args=(child_conn, plan, attempt, resume_cycles),
        )
        process.start()
        child_conn.close()
        events = []
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if parent_conn.poll(0.2):
                    try:
                        events.append(parent_conn.recv())
                    except EOFError:
                        break  # child gone, pipe drained
                    if events[-1][0] == "finished":
                        break
                elif not process.is_alive():
                    # killed (or done); drain anything left in the pipe
                    while parent_conn.poll(0):
                        try:
                            events.append(parent_conn.recv())
                        except EOFError:
                            break
                    break
        finally:
            process.join(timeout=60)
            parent_conn.close()
        return process.exitcode, dict(events)

    def test_process_kill_takes_the_process_down(self):
        import signal as _signal

        plan = ({"cycle": 6, "action": "process_kill", "args": {}},)
        exitcode, events = self._run_victim(plan)
        assert events.get("compiled") == 1
        assert "finished" not in events
        assert exitcode == -_signal.SIGKILL

    def test_plan_attempt_filter_spares_later_attempts(self):
        plan = ({"cycle": 6, "action": "process_kill",
                 "attempts": [1]},)
        exitcode, events = self._run_victim(plan, attempt=2)
        assert events.get("compiled") == 0
        assert "finished" in events
        assert exitcode == 0

    def test_plan_resume_filter_drops_survived_faults(self):
        # resumed past cycle 6, the kill at 6 has already been survived
        plan = ({"cycle": 6, "action": "process_kill"},)
        exitcode, events = self._run_victim(plan, resume_cycles=8)
        assert events.get("compiled") == 0
        assert "finished" in events
        assert exitcode == 0

    def test_unknown_plan_action_is_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ReproError, match="unknown fault-plan"):
            injector.compile_plan(
                [{"cycle": 3, "action": "summon_gremlin"}]
            )

    def test_compiled_plan_drives_state_faults(
        self, testmodel, smc_program
    ):
        # the data form and the direct lambda form must be equivalent
        injector = FaultInjector()
        direct = create_simulator(testmodel, "compiled")
        direct.load_program(smc_program)
        injector.run_with_faults(
            direct,
            [(5, lambda sim: injector.flip_memory_bit(
                sim, "dmem", address=3, bit=2))],
            max_cycles=10_000,
        )

        planned = FaultInjector()
        victim = create_simulator(testmodel, "compiled")
        victim.load_program(smc_program)
        plan = planned.compile_plan([
            {"cycle": 5, "action": "flip_memory_bit",
             "args": {"memory": "dmem", "address": 3, "bit": 2}},
        ])
        planned.run_with_faults(victim, plan, max_cycles=10_000)
        assert victim.state.snapshot() == direct.state.snapshot()

    def test_stepping_phase_keeps_snapshot_cadence(
        self, testmodel, smc_program
    ):
        # while a fault is still pending, run_with_faults *steps* the
        # engine; autosnapshots must keep their cadence there too, or a
        # process kill before the first budget-run chunk would lose
        # everything
        beats = []
        injector = FaultInjector()
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(smc_program)
        budget = RunBudget(checkpoint_every=4, check_interval=4)
        injector.run_with_faults(
            simulator,
            [(17, lambda sim: None)],   # pending until cycle 17
            max_cycles=10_000,
            budget=budget,
            on_checkpoint=lambda snap: beats.append(snap.cycles),
        )
        stepped_beats = [c for c in beats if c <= 17]
        assert stepped_beats, "no autosnapshot during the stepping phase"
        assert stepped_beats[0] <= 8  # cadence held from the start
        for earlier, later in zip(beats, beats[1:]):
            assert later > earlier
