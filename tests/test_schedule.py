"""Tests for operation scheduling (decoded instruction -> stage plan)."""

import pytest

from repro.coding.decoder import InstructionDecoder
from repro.coding.encoder import InstructionEncoder, OperandSpec
from repro.lisa.semantics import compile_source
from repro.machine.schedule import build_schedule
from repro.support.errors import LisaSemanticError


def decode(model, spec):
    word = InstructionEncoder(model).encode(spec)
    return InstructionDecoder(model).decode(word)


def insn_spec(opname, mode=0, fields=None, children=None):
    return OperandSpec(
        "insn",
        fields={"mode": mode},
        children={"op": OperandSpec(opname, fields=fields or {},
                                    children=children or {})},
    )


def reg_spec(index):
    return OperandSpec("reg", fields={"idx": index})


class TestBasicScheduling:
    def test_single_stage_op(self, testmodel):
        node = decode(testmodel, insn_spec(
            "ldi", fields={"imm": 1}, children={"dst": reg_spec(0)}
        ))
        schedule = build_schedule(node, testmodel)
        assert len(schedule) == 1
        assert schedule[0].stage == 2  # EX
        assert schedule[0].node.operation.name == "ldi"

    def test_activation_into_later_stage(self, testmodel):
        node = decode(testmodel, insn_spec(
            "st", fields={"addr": 5}, children={"src": reg_spec(0)}
        ))
        schedule = build_schedule(node, testmodel)
        stages = [(s.stage, s.node.operation.name) for s in schedule]
        assert stages == [(2, "st"), (3, "note_store")]

    def test_schedule_sorted_by_stage(self, testmodel):
        node = decode(testmodel, insn_spec(
            "st", fields={"addr": 5}, children={"src": reg_spec(0)}
        ))
        schedule = build_schedule(node, testmodel)
        assert list(s.stage for s in schedule) == sorted(
            s.stage for s in schedule
        )

    def test_variant_dependent_behavior(self, testmodel):
        for mode in (0, 1):
            node = decode(testmodel, insn_spec(
                "add", mode=mode, children={
                    "dst": reg_spec(0), "src1": reg_spec(1),
                    "src2": reg_spec(2),
                }
            ))
            schedule = build_schedule(node, testmodel)
            assert len(schedule) == 1

    def test_helper_node_parents_to_activator(self, testmodel):
        node = decode(testmodel, insn_spec(
            "st", fields={"addr": 9}, children={"src": reg_spec(0)}
        ))
        schedule = build_schedule(node, testmodel)
        helper = schedule[-1].node
        assert helper.operation.name == "note_store"
        assert helper.parent.operation.name == "st"
        # REFERENCE addr resolves through the parent.
        assert helper.lookup("addr") == ("label", 9)


class TestMultiStageChains:
    SOURCE = """
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[2];
    MEMORY uint8 pmem[8];
    PIPELINE pipe = { S0; S1; S2; S3 };
}
CONFIG { WORDSIZE(2); ROOT(insn); EXECUTE_STAGE(S1); }
OPERATION insn {
    DECLARE { GROUP op = { chainy }; }
    CODING { op }
    ACTIVATION { op }
}
OPERATION chainy IN pipe.S1 {
    CODING { 0b01 }
    BEHAVIOR { R[0] = R[0] + 1; }
    ACTIVATION { later, same_stage }
}
OPERATION later IN pipe.S3 {
    BEHAVIOR { R[1] = R[0]; }
}
OPERATION same_stage {
    BEHAVIOR { R[0] = R[0] + 10; }
}
"""

    def test_chain_stages(self):
        model = compile_source(self.SOURCE)
        node = InstructionDecoder(model).decode(0b01)
        schedule = build_schedule(node, model)
        plan = [(s.stage, s.node.operation.name) for s in schedule]
        # same_stage has no stage of its own: inherits the activator's.
        assert (1, "chainy") in plan
        assert (1, "same_stage") in plan
        assert (3, "later") in plan

    def test_activation_cycle_detected(self):
        source = self.SOURCE.replace(
            "OPERATION same_stage {\n    BEHAVIOR { R[0] = R[0] + 10; }\n}",
            "OPERATION same_stage {\n    BEHAVIOR { }\n"
            "    ACTIVATION { chainy }\n}",
        )
        model = compile_source(source)
        node = InstructionDecoder(model).decode(0b01)
        with pytest.raises(LisaSemanticError):
            build_schedule(node, model)


class TestActivationThroughReference:
    """An op may ACTIVATE a REFERENCEd operand: the helper fires
    whatever sub-operation the ancestor decoded into that slot."""

    SOURCE = """
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[2];
    MEMORY uint8 pmem[8];
    PIPELINE pipe = { S0; S1; S2 };
}
CONFIG { WORDSIZE(2); ROOT(insn); EXECUTE_STAGE(S1); }
OPERATION insn {
    DECLARE { GROUP kid = { inc || dbl }; }
    CODING { 0b0 kid }
    ACTIVATION { relay }
}
OPERATION relay IN pipe.S1 {
    DECLARE { REFERENCE kid; }
    BEHAVIOR { R[1] = R[1] + 100; }
    ACTIVATION { kid }
}
OPERATION inc IN pipe.S2 { CODING { 0b0 } BEHAVIOR { R[0] = R[0] + 1; } }
OPERATION dbl IN pipe.S2 { CODING { 0b1 } BEHAVIOR { R[0] = R[0] * 2; } }
"""

    @pytest.mark.parametrize("word,opname", [(0b00, "inc"), (0b01, "dbl")])
    def test_relayed_activation(self, word, opname):
        model = compile_source(self.SOURCE)
        node = InstructionDecoder(model).decode(word)
        schedule = build_schedule(node, model)
        plan = [(s.stage, s.node.operation.name) for s in schedule]
        assert (1, "relay") in plan
        assert (2, opname) in plan
