"""Tests for the LISA compiler (semantic analysis)."""

import pytest

from repro.lisa.semantics import compile_source
from repro.support.errors import (
    BehaviorError,
    CodingError,
    LisaSemanticError,
)

HEADER = """
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[4];
    MEMORY uint16 pmem[64];
    MEMORY int dmem[16];
    PIPELINE pipe = { FE; EX };
}
CONFIG { WORDSIZE(8); PROGRAM_MEMORY(pmem); ROOT(insn);
         EXECUTE_STAGE(EX); }
"""

ROOT_OK = """
OPERATION insn {
    DECLARE { GROUP op = { alpha }; }
    CODING { op }
    ACTIVATION { op }
}
OPERATION alpha IN pipe.EX {
    DECLARE { LABEL k; }
    CODING { 0b0001 k[4] }
    BEHAVIOR { R[0] = k; }
}
"""


def compile_ok(extra="", header=HEADER, root=ROOT_OK):
    return compile_source(header + root + extra)


class TestResources:
    def test_minimal_model_compiles(self):
        model = compile_ok()
        assert model.pc_name == "PC"
        assert model.pipeline.depth == 2
        assert model.word_size == 8

    def test_missing_pc_rejected(self):
        source = HEADER.replace("PROGRAM_COUNTER uint32 PC;", "")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_missing_pipeline_rejected(self):
        source = HEADER.replace("PIPELINE pipe = { FE; EX };", "")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_duplicate_resource_rejected(self):
        source = HEADER.replace(
            "REGISTER int R[4];", "REGISTER int R[4]; REGISTER int R[2];"
        )
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_unknown_type_rejected(self):
        source = HEADER.replace("REGISTER int R[4]", "REGISTER quux R[4]")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_zero_size_register_file_rejected(self):
        source = HEADER.replace("REGISTER int R[4]", "REGISTER int R[0]")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_duplicate_pipeline_stage_rejected(self):
        source = HEADER.replace("{ FE; EX }", "{ FE; FE }")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)


class TestConfig:
    def test_unknown_key_rejected(self):
        source = HEADER.replace("WORDSIZE(8);", "WORDSIZE(8); FROBNICATE(1);")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_program_memory_must_exist(self):
        source = HEADER.replace("PROGRAM_MEMORY(pmem)", "PROGRAM_MEMORY(nope)")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_program_memory_inferred_when_unique(self):
        source = HEADER.replace("MEMORY int dmem[16];", "").replace(
            "PROGRAM_MEMORY(pmem); ", ""
        )
        model = compile_source(source + ROOT_OK.replace("dmem", "pmem"))
        assert model.config.program_memory == "pmem"

    def test_program_memory_required_when_ambiguous(self):
        source = HEADER.replace("PROGRAM_MEMORY(pmem); ", "")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_narrow_program_memory_rejected(self):
        source = HEADER.replace("WORDSIZE(8)", "WORDSIZE(32)")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_vliw_needs_parallel_bit(self):
        source = HEADER.replace("WORDSIZE(8);", "WORDSIZE(8); FETCH_PACKET(4);")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_parallel_bit_must_be_inside_word(self):
        source = HEADER.replace(
            "WORDSIZE(8);", "WORDSIZE(8); FETCH_PACKET(4); PARALLEL_BIT(9);"
        )
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_branch_policy_validated(self):
        source = HEADER.replace(
            "EXECUTE_STAGE(EX);", "EXECUTE_STAGE(EX); BRANCH_POLICY(maybe);"
        )
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_defines_available(self):
        source = HEADER.replace("WORDSIZE(8);", "WORDSIZE(8); DEFINE(K, 7);")
        model = compile_source(source + ROOT_OK)
        assert model.config.defines["K"] == 7


class TestOperations:
    def test_duplicate_operation_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok("OPERATION alpha { CODING { 0b1 } }")

    def test_root_must_exist(self):
        source = HEADER.replace("ROOT(insn)", "ROOT(ghost)")
        with pytest.raises(LisaSemanticError):
            compile_source(source + ROOT_OK)

    def test_root_must_have_coding(self):
        source = HEADER + """
OPERATION insn { BEHAVIOR { } }
"""
        with pytest.raises(LisaSemanticError):
            compile_source(source)

    def test_root_width_must_match_wordsize(self):
        bad_root = ROOT_OK.replace("0b0001 k[4]", "0b0001 k[5]")
        with pytest.raises(CodingError):
            compile_source(HEADER + bad_root)

    def test_unknown_stage_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok("OPERATION beta IN pipe.XY { CODING { 0b1 } }")

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok("OPERATION beta IN bogus.EX { CODING { 0b1 } }")

    def test_conditional_declare_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { IF (x == 0) { DECLARE { LABEL y; } } }"
            )

    def test_conditional_coding_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { DECLARE { LABEL x; } "
                "IF (x == 0) { CODING { 0b1 } } }"
            )

    def test_two_codings_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok("OPERATION beta { CODING { 0b1 } CODING { 0b0 } }")

    def test_label_in_coding_needs_width(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { DECLARE { LABEL x; } CODING { x } }"
            )

    def test_coding_of_undeclared_name_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok("OPERATION beta { CODING { mystery[3] } }")

    def test_duplicate_operand_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { DECLARE { LABEL x; LABEL x; } "
                "CODING { x[2] } }"
            )


class TestGroupWidths:
    def test_unequal_alternative_widths_rejected(self):
        source = HEADER + """
OPERATION insn {
    DECLARE { GROUP op = { alpha || beta }; }
    CODING { op }
}
OPERATION alpha { CODING { 0b00000001 } }
OPERATION beta { CODING { 0b0001 } }
"""
        with pytest.raises(CodingError):
            compile_source(source)

    def test_recursive_coding_rejected(self):
        source = HEADER + """
OPERATION insn {
    DECLARE { GROUP op = { insn }; }
    CODING { op }
}
"""
        with pytest.raises(CodingError):
            compile_source(source)

    def test_alternative_without_coding_rejected(self):
        source = HEADER + """
OPERATION insn {
    DECLARE { GROUP op = { alpha }; }
    CODING { op }
}
OPERATION alpha { BEHAVIOR { } }
"""
        with pytest.raises(CodingError):
            compile_source(source)

    def test_ambiguous_alternatives_rejected(self):
        source = HEADER + """
OPERATION insn {
    DECLARE { GROUP op = { alpha || beta }; }
    CODING { op }
}
OPERATION alpha { DECLARE { LABEL k; } CODING { 0b0 k[7] } }
OPERATION beta { DECLARE { LABEL k; } CODING { 0bx k[7] } }
"""
        with pytest.raises(CodingError):
            compile_source(source)


class TestNameChecking:
    def test_behavior_unknown_name_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { CODING { 0b1 } BEHAVIOR { R[0] = ghost; } }"
            )

    def test_behavior_local_is_allowed(self):
        model = compile_ok(
            "OPERATION beta { CODING { 0b1 } "
            "BEHAVIOR { int t = 3; R[0] = t; } }"
        )
        assert "beta" in model.operations

    def test_behavior_syntax_error_reported_with_op_name(self):
        with pytest.raises(BehaviorError) as exc_info:
            compile_ok("OPERATION beta { CODING { 0b1 } BEHAVIOR { x += ; } }")
        assert "beta" in str(exc_info.value)

    def test_activation_of_unknown_name_rejected(self):
        with pytest.raises(LisaSemanticError):
            compile_ok(
                "OPERATION beta { CODING { 0b1 } ACTIVATION { ghost } }"
            )

    def test_activation_into_earlier_stage_rejected(self):
        source = HEADER + """
OPERATION insn {
    DECLARE { GROUP op = { alpha }; }
    CODING { op }
    ACTIVATION { op }
}
OPERATION alpha IN pipe.EX {
    CODING { 0b00000001 }
    ACTIVATION { early }
}
OPERATION early IN pipe.FE { BEHAVIOR { } }
"""
        with pytest.raises(LisaSemanticError):
            compile_source(source)

    def test_unsatisfiable_reference_rejected(self):
        source = HEADER + ROOT_OK + """
OPERATION orphan {
    DECLARE { REFERENCE nothing_declares_this; }
    CODING { 0b00000010 }
    BEHAVIOR { R[0] = nothing_declares_this; }
}
"""
        with pytest.raises(LisaSemanticError):
            compile_source(source)


class TestDiagnostics:
    def test_unused_operation_warned(self):
        model = compile_ok("OPERATION lonely { CODING { 0b11111111 } }")
        warnings = [d.message for d in model.diagnostics.warnings]
        assert any("lonely" in w for w in warnings)

    def test_operand_shadowing_resource_warned(self):
        model = compile_ok(
            "OPERATION shady { DECLARE { LABEL R; } CODING { R[2] } }"
        )
        warnings = [d.message for d in model.diagnostics.warnings]
        assert any("shadows" in w for w in warnings)
