"""Fault-tolerant simulation service: supervised pool + recovery.

The robustness bar these tests hold the service to:

* a batch run under chaos -- every worker SIGKILLed mid-job, a
  corrupted shared-cache entry -- completes **bit-identical** to a
  serial no-fault run, within a bounded retry budget and bounded wall
  time (the pool never deadlocks);
* failure handling is policy-driven and visible: crashes resurrect
  from the last autosnapshot, native crashes degrade to the Python
  backend, compile faults degrade to the interpretive kind, repeated
  crashes quarantine with a structured JobFailure report;
* tenants are metered at admission; the HTTP front end maps it all
  onto status codes a dumb client can act on.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading

import pytest

from repro.api import build_toolset, load_model
from repro.apps import build_fir
from repro.resilience import FaultInjector
from repro.service import (
    Client,
    JobSpec,
    ServicePolicy,
    Supervisor,
    TenantBudget,
)
from repro.service.chaos import (
    build_app_spec,
    compare_results,
    corrupt_cache_entries,
    kill_plan,
    run_chaos,
    run_reference,
)
from repro.service.server import ServiceServer
from repro.service.worker import classify_error
from repro.sim import create_simulator
from repro.simcc.cache import SimulationCache
from repro.support.errors import (
    BudgetExceededError,
    DecodeError,
    ReproError,
    ServiceError,
    SimulationTimeout,
)
from repro.tools.objfile import Program

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault seams reach workers via fork inheritance",
)

#: SIGKILL cycle for recoverable kill plans: past the third autosnapshot
#: (cadence 1000) and well before the FIR run's natural end (~6300).
KILL_CYCLE = 3_000
CADENCE = 1_000


def fast_policy(**overrides):
    """A ServicePolicy with test-speed backoff."""
    options = dict(max_retries=3, backoff_base=0.01, backoff_cap=0.2)
    options.update(overrides)
    return ServicePolicy(**options)


def stop_plan(cycle, attempts=(1,)):
    """A fault plan that SIGSTOPs the worker: alive, silent, wedged --
    the scenario only the heartbeat watchdog can catch."""
    entry = {
        "cycle": int(cycle),
        "action": "process_kill",
        "args": {"sig": int(signal.SIGSTOP)},
    }
    if attempts is not None:
        entry["attempts"] = [int(a) for a in attempts]
    return (entry,)


@pytest.fixture(scope="module")
def fir_app():
    return build_fir("c62x", taps=8, samples=48)


@pytest.fixture(scope="module")
def fir_tools(fir_app):
    return build_toolset(load_model(fir_app.model_name))


@pytest.fixture(scope="module")
def fir_spec(fir_app, fir_tools):
    return build_app_spec(fir_app, fir_tools, checkpoint_every=CADENCE)


@pytest.fixture(scope="module")
def fir_reference(fir_spec):
    return run_reference(fir_spec)


def respec(spec, **overrides):
    """A fresh JobSpec: ``spec`` with fields replaced."""
    data = spec.to_dict()
    data.update(overrides)
    return JobSpec.from_dict(data)


class TestJobSpec:
    def test_round_trip(self, fir_spec):
        clone = JobSpec.from_dict(fir_spec.to_dict())
        assert clone == fir_spec
        assert clone.dumps == fir_spec.dumps

    def test_requires_model_and_program(self):
        with pytest.raises(ReproError, match="model"):
            JobSpec.from_dict({"program": {}})

    def test_rejects_unknown_fields(self, fir_spec):
        data = fir_spec.to_dict()
        data["prioritee"] = 7
        with pytest.raises(ReproError, match="prioritee"):
            JobSpec.from_dict(data)


class TestErrorClassification:
    def test_typed_errors_map_to_categories(self):
        assert classify_error(
            SimulationTimeout("t", budget="wall"), "run") == "timeout"
        assert classify_error(DecodeError("d"), "run") == "decode"
        assert classify_error(ReproError("x"), "load") == "compile"
        assert classify_error(ReproError("x"), "run") == "simulation"


class TestCleanJobs:
    def test_result_is_bit_identical_to_serial(self, fir_spec,
                                               fir_reference):
        with Supervisor(workers=2, policy=fast_policy()) as pool:
            job = pool.submit(fir_spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["attempt"] == 1
            compare_results(fir_reference, pool.result(job))

    def test_result_before_completion_is_typed(self, fir_spec):
        with Supervisor(workers=1, policy=fast_policy()) as pool:
            job = pool.submit(fir_spec)
            with pytest.raises(ServiceError, match="no result"):
                pool.result(job)
            pool.wait(job, timeout=120)

    def test_unknown_job_is_typed(self):
        with Supervisor(workers=1) as pool:
            with pytest.raises(ServiceError, match="unknown job"):
                pool.status("job-999999")


class TestCrashRecovery:
    def test_sigkill_resumes_from_checkpoint(self, fir_app, fir_tools,
                                             fir_spec, fir_reference):
        spec = respec(fir_spec, fault_plan=kill_plan(KILL_CYCLE))
        with Supervisor(workers=2, policy=fast_policy()) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["attempt"] == 2
            assert status["attempts"][0]["cause"] == "worker_crash"
            # the kill arrived SIGKILL-hard: exit code -9
            assert status["attempts"][0]["exitcode"] == -signal.SIGKILL
            compare_results(fir_reference, pool.result(job))
            counters = pool.metrics_snapshot()["counters"]
            assert counters["service.worker_deaths"] == 1
            assert counters["service.retries"] == 1

    def test_repeated_kill_quarantines_with_report(
        self, fir_spec, tmp_path
    ):
        # kill every attempt *below* the snapshot cadence: no
        # checkpoint ever lands, so no attempt escapes the kill
        spec = respec(
            fir_spec, checkpoint_every=50_000,
            fault_plan=kill_plan(500, attempts=None),
        )
        report_dir = str(tmp_path / "reports")
        policy = fast_policy(max_retries=2, report_dir=report_dir)
        with Supervisor(workers=1, policy=policy) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "failed"
            assert status["attempt"] == 3  # max_retries + 1, no more
            assert status["cause"] == "worker_crash"
            with pytest.raises(ServiceError, match="quarantined"):
                pool.result(job)
            report = pool.failure(job)
        assert report["format"] == 1
        assert [a["cause"] for a in report["attempts"]] == \
            ["worker_crash"] * 3
        # the spec summary elides the program image
        assert report["spec"]["program"] == spec.program["name"]
        assert "words" not in json.dumps(report["spec"])
        on_disk = os.path.join(report_dir, "%s.json" % job)
        with open(on_disk, encoding="utf-8") as handle:
            assert json.load(handle) == report

    def test_pool_survives_mixed_batch(self, fir_spec, fir_reference):
        killed = respec(fir_spec, fault_plan=kill_plan(KILL_CYCLE))
        with Supervisor(workers=2, policy=fast_policy()) as pool:
            jobs = [
                pool.submit(killed), pool.submit(fir_spec),
                pool.submit(killed), pool.submit(fir_spec),
            ]
            pool.drain(timeout=180)
            for job in jobs:
                assert pool.status(job)["state"] == "completed"
                compare_results(fir_reference, pool.result(job),
                                label=job)


class TestHeartbeat:
    def test_wedged_worker_is_killed_and_job_resumes(
        self, fir_spec, fir_reference
    ):
        # SIGSTOP wedges the worker silently; only the heartbeat
        # watchdog can tell -- the process sentinel never fires
        spec = respec(fir_spec, fault_plan=stop_plan(KILL_CYCLE))
        policy = fast_policy(heartbeat_timeout=0.5)
        with Supervisor(workers=1, policy=policy) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["attempt"] == 2
            assert status["attempts"][0]["cause"] == "heartbeat_timeout"
            compare_results(fir_reference, pool.result(job))


class TestWallTimeout:
    def test_wall_budget_attempts_resume_with_progress(self, fir_spec):
        # a wall budget so tight every attempt times out after ~one
        # chunk; the retries must make monotonic progress from the
        # timeout checkpoints until the run completes
        spec = respec(fir_spec, max_wall_seconds=1e-3)
        with Supervisor(workers=1,
                        policy=fast_policy(max_retries=10)) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["attempt"] > 1
            causes = {a["cause"] for a in status["attempts"]}
            assert causes == {"wall_timeout"}
            cycles = [a["cycles"] for a in status["attempts"]]
            assert cycles == sorted(cycles)
            assert len(set(cycles)) == len(cycles), \
                "retries made no progress"

    def test_cycle_budget_is_final(self, fir_spec):
        spec = respec(fir_spec, max_cycles=100)
        with Supervisor(workers=1, policy=fast_policy()) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "failed"
            assert status["cause"] == "cycle_budget_exhausted"
            assert status["attempt"] == 1  # deterministic: no retries


class TestDegradation:
    def test_native_crash_degrades_to_python_backend(
        self, fir_spec, fir_reference
    ):
        spec = respec(fir_spec, backend="native",
                      fault_plan=kill_plan(KILL_CYCLE))
        with Supervisor(workers=1, policy=fast_policy()) as pool:
            job = pool.submit(spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["backend"] == "python"
            action = status["degradations"][0]
            assert (action["action"], action["from"], action["to"]) == \
                ("backend", "native", "python")
            families = pool.metrics_snapshot()["families"]
            assert families["service.degradations"][
                "native_to_python"] == 1
            compare_results(fir_reference, pool.result(job))

    @needs_fork
    def test_compile_fault_degrades_to_interpretive(
        self, fir_spec, fir_reference
    ):
        # workers forked inside the context inherit the failing
        # compiler; the degraded interpretive retry never compiles
        injector = FaultInjector()
        with injector.compile_fault():
            pool = Supervisor(workers=1, policy=fast_policy(),
                              start_method="fork")
        try:
            job = pool.submit(fir_spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            assert status["kind"] == "interpretive"
            record = status["attempts"][0]
            assert record["cause"] == "compile_fault"
            assert "injected compile fault" in record["message"]
            action = status["degradations"][0]
            assert (action["action"], action["from"], action["to"]) == \
                ("kind", "compiled", "interpretive")
            families = pool.metrics_snapshot()["families"]
            assert families["service.degradations"][
                "compile_to_interpretive"] == 1
            compare_results(fir_reference, pool.result(job))
        finally:
            pool.shutdown()

    @needs_fork
    def test_undegradable_compile_fault_quarantines(self, fir_spec):
        injector = FaultInjector()
        with injector.compile_fault():
            pool = Supervisor(
                workers=1,
                policy=fast_policy(degrade_compile=False),
                start_method="fork",
            )
        try:
            job = pool.submit(fir_spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "failed"
            assert status["cause"] == "compile_fault"
        finally:
            pool.shutdown()


class TestCacheCorruption:
    def test_corrupt_shared_entry_heals_and_completes(
        self, fir_app, fir_tools, fir_spec, fir_reference, tmp_path
    ):
        cache_dir = str(tmp_path / "simtab")
        warm = create_simulator(
            load_model(fir_app.model_name), "compiled",
            cache=SimulationCache(cache_dir),
        )
        warm.load_program(Program.from_dict(fir_spec.program))
        assert corrupt_cache_entries(cache_dir) == 1
        with Supervisor(workers=1, cache_dir=cache_dir,
                        policy=fast_policy()) as pool:
            job = pool.submit(fir_spec)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "completed"
            result = pool.result(job)
            assert result["cache_stats"]["corrupt_entries"] == 1
            assert result["cache_stats"]["stores"] == 1  # rebuilt
            compare_results(fir_reference, result)
            families = pool.metrics_snapshot()["families"]
            assert families["service.cache"]["corrupt_entries"] == 1


class TestCancel:
    def test_cancel_pending_job(self, fir_spec):
        wedged = respec(fir_spec, fault_plan=stop_plan(KILL_CYCLE))
        policy = fast_policy(heartbeat_timeout=30.0)
        with Supervisor(workers=1, policy=policy) as pool:
            blocker = pool.submit(wedged)
            queued = pool.submit(fir_spec)
            assert pool.cancel(queued)["state"] == "cancelled"
            assert pool.cancel(blocker)["state"] in (
                "running", "cancelled"
            )
            pool.drain(timeout=120)
            assert pool.status(blocker)["state"] == "cancelled"
            counters = pool.metrics_snapshot()["counters"]
            assert counters["service.jobs_cancelled"] == 2

    def test_cancel_running_job_kills_worker(self, fir_spec):
        wedged = respec(fir_spec, fault_plan=stop_plan(KILL_CYCLE))
        with Supervisor(workers=1, policy=fast_policy()) as pool:
            job = pool.submit(wedged)
            for _ in range(100):
                pool.pump(0.02)
                if pool.status(job)["state"] == "running":
                    break
            pool.cancel(job)
            status = pool.wait(job, timeout=120)
            assert status["state"] == "cancelled"

    def test_cancel_terminal_job_is_a_no_op(self, fir_spec):
        with Supervisor(workers=1, policy=fast_policy()) as pool:
            job = pool.submit(fir_spec)
            pool.wait(job, timeout=120)
            assert pool.cancel(job)["state"] == "completed"


class TestTenantBudgets:
    def test_per_job_cycle_cap(self, fir_spec):
        tenants = {"acme": TenantBudget(max_cycles_per_job=10_000)}
        with Supervisor(workers=1, tenants=tenants) as pool:
            with pytest.raises(BudgetExceededError) as excinfo:
                pool.submit(respec(fir_spec, tenant="acme",
                                   max_cycles=20_000))
            assert excinfo.value.budget == "max_cycles_per_job"
            assert excinfo.value.tenant == "acme"
            # within the cap is admitted
            job = pool.submit(respec(fir_spec, tenant="acme",
                                     max_cycles=10_000))
            assert pool.wait(job, timeout=120)["state"] == "completed"

    def test_active_job_cap(self, fir_spec):
        tenants = {"acme": TenantBudget(max_active_jobs=1)}
        with Supervisor(workers=1, tenants=tenants,
                        policy=fast_policy()) as pool:
            blocker = pool.submit(respec(fir_spec, tenant="acme"))
            with pytest.raises(BudgetExceededError) as excinfo:
                pool.submit(respec(fir_spec, tenant="acme"))
            assert excinfo.value.budget == "max_active_jobs"
            # other tenants are unaffected ...
            other = pool.submit(respec(fir_spec, tenant="zeta"))
            # ... and cancelling the blocker frees the slot
            pool.cancel(blocker)
            job = pool.submit(respec(fir_spec, tenant="acme"))
            pool.drain(timeout=120)
            assert pool.status(other)["state"] == "completed"
            assert pool.status(job)["state"] == "completed"

    def test_lifetime_cycle_budget(self, fir_spec):
        tenants = {"acme": TenantBudget(max_total_cycles=5_000)}
        with Supervisor(workers=1, tenants=tenants,
                        policy=fast_policy()) as pool:
            first = pool.submit(respec(fir_spec, tenant="acme"))
            assert pool.wait(first, timeout=120)["state"] == "completed"
            # the completed run (~6300 cycles) exhausted the lifetime
            with pytest.raises(BudgetExceededError) as excinfo:
                pool.submit(respec(fir_spec, tenant="acme"))
            assert excinfo.value.budget == "max_total_cycles"


class TestChaosBatch:
    """The acceptance scenario: a 50-job batch with every worker
    SIGKILLed mid-job and a corrupted shared-cache entry completes
    bit-identical to the serial no-fault run, inside the retry budget,
    inside a wall-clock bound (the pool never deadlocks)."""

    def test_chaos_batch_is_bit_identical(self, tmp_path):
        summary = run_chaos(
            workers=4, jobs=50,
            cache_dir=str(tmp_path / "simtab"),
            report_dir=str(tmp_path / "reports"),
            timeout=420.0,  # drain() raises if the pool wedges
        )
        assert summary["ok"], summary["mismatches"]
        assert summary["mismatches"] == []
        # every initial worker really died at least once
        assert summary["worker_deaths"] >= summary["workers"]
        # no job needed more than the retry budget (3 retries)
        assert summary["max_attempts"] <= 4
        # the corrupted shared-cache entry was quarantined and rebuilt
        assert summary["corrupted_cache_entries"] == 1
        assert summary["cache"]["corrupt_entries"] >= 1
        # nothing was quarantined, so no JobFailure reports landed
        reports = tmp_path / "reports"
        assert not (reports.is_dir() and os.listdir(str(reports)))


@pytest.fixture()
def http_service(fir_spec):
    supervisor = Supervisor(workers=2, policy=fast_policy())
    server = ServiceServer(("127.0.0.1", 0), supervisor)
    server.start_pump()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = Client("http://127.0.0.1:%d" % server.server_address[1])
    try:
        yield client
    finally:
        server.close()
        thread.join(timeout=5.0)


class TestHttpService:
    def test_submit_wait_result_round_trip(self, http_service,
                                           fir_spec, fir_reference):
        client = http_service
        assert client.health()["ok"]
        job = client.submit(fir_spec)
        status = client.wait(job, timeout=120)
        assert status["state"] == "completed"
        compare_results(fir_reference, client.result(job), label=job)
        assert (job, "completed") in [tuple(j) for j in client.jobs()]

    def test_metrics_exposition(self, http_service, fir_spec):
        client = http_service
        client.wait(client.submit(fir_spec), timeout=120)
        text = client.metrics_text()
        assert "service_jobs_completed_total 1" in text
        assert text.endswith("# EOF\n")

    def test_unknown_job_is_404(self, http_service):
        with pytest.raises(ServiceError, match="unknown job"):
            http_service.status("job-424242")

    def test_result_before_completion_is_409(self, http_service,
                                             fir_spec):
        client = http_service
        job = client.submit(respec(
            fir_spec, fault_plan=stop_plan(KILL_CYCLE)))
        with pytest.raises(ServiceError, match="no result"):
            client.result(job)
        client.cancel(job)
        assert client.wait(job, timeout=120)["state"] == "cancelled"

    def test_budget_rejection_is_429(self, fir_spec):
        tenants = {"acme": TenantBudget(max_cycles_per_job=10)}
        supervisor = Supervisor(workers=1, tenants=tenants)
        server = ServiceServer(("127.0.0.1", 0), supervisor)
        server.start_pump()
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        client = Client(
            "http://127.0.0.1:%d" % server.server_address[1]
        )
        try:
            with pytest.raises(BudgetExceededError) as excinfo:
                client.submit(respec(fir_spec, tenant="acme"))
            assert excinfo.value.budget == "max_cycles_per_job"
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_bad_spec_is_rejected(self, http_service):
        with pytest.raises(ServiceError, match="model"):
            http_service.submit({"name": "incomplete"})
