"""Tests for the simulation compiler and its generator."""

import pytest

from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.simcc.compiler import SimulationCompiler
from repro.simcc.generator import generate_simulation_compiler
from repro.support.errors import DecodeError, ReproError, SimulationError
from repro.tools.objfile import Program


@pytest.fixture(scope="module")
def compiled_table(testmodel, testmodel_tools):
    program = testmodel_tools.assembler.assemble_text("""
start:  ldi r1, 5
        ldi r2, 7
        add r3, r1, r2
        st r3, 9
        halt
""")
    state = ProcessorState(testmodel)
    control = PipelineControl()
    program.load_into(state)
    simcc = generate_simulation_compiler(testmodel)
    table = simcc.compile(program, state, control)
    return table, program


class TestSimulationTable:
    def test_one_slot_per_program_word(self, compiled_table):
        table, program = compiled_table
        assert set(table.slots) == set(range(5))
        assert table.instruction_count == 5
        assert table.word_count == 5

    def test_slot_shape(self, compiled_table, testmodel):
        table, _ = compiled_table
        slot = table.slots[0]
        assert len(slot.ops_by_stage) == testmodel.pipeline.depth
        assert slot.words == 1
        assert slot.insn_count == 1
        # ldi has exactly one micro-op, at EX (stage 2).
        assert len(slot.ops_by_stage[2]) == 1
        assert slot.ops_by_stage[0] == ()

    def test_multi_stage_instruction(self, compiled_table):
        table, _ = compiled_table
        st_slot = table.slots[3]
        assert len(st_slot.ops_by_stage[2]) == 1  # st at EX
        assert len(st_slot.ops_by_stage[3]) == 1  # note_store at WB

    def test_has_control_flags(self, compiled_table):
        table, _ = compiled_table
        assert table.has_control[4]  # halt
        assert not table.has_control[0]  # ldi

    def test_slot_at_unknown_address_raises(self, compiled_table):
        table, _ = compiled_table
        with pytest.raises(SimulationError):
            table.slot_at(100)

    def test_frontend_returns_trap_for_unknown(self, compiled_table,
                                               testmodel):
        table, _ = compiled_table
        frontend = table.make_frontend(testmodel)
        slot = frontend(100)
        assert slot.label == "<trap>"

    def test_items_by_stage_parallel_to_slots(self, compiled_table,
                                              testmodel):
        table, _ = compiled_table
        for pc, slot in table.slots.items():
            items = table.items_by_stage[pc]
            for stage in range(testmodel.pipeline.depth):
                assert len(items[stage]) == len(slot.ops_by_stage[stage])


class TestLevels:
    def test_unknown_level_rejected(self, testmodel):
        simcc = SimulationCompiler(testmodel)
        with pytest.raises(ReproError):
            simcc.compile(Program(), None, None, level="ludicrous")

    def test_instantiated_level_fuses_per_stage(self, testmodel,
                                                testmodel_tools):
        program = testmodel_tools.assembler.assemble_text(
            "st r1, 3\nhalt\n"
        )
        state = ProcessorState(testmodel)
        control = PipelineControl()
        program.load_into(state)
        table = SimulationCompiler(testmodel).compile(
            program, state, control, level="instantiated"
        )
        slot = table.slots[0]
        # Level 3: at most one generated function per occupied stage.
        assert len(slot.ops_by_stage[2]) == 1
        assert len(slot.ops_by_stage[3]) == 1
        assert slot.ops_by_stage[2][0].__name__.startswith("insn_")

    def test_both_levels_execute_identically(self, testmodel,
                                             testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("""
        ldi r1, 9
        st r1, 4
        halt
""")
        results = []
        for level in ("sequenced", "instantiated"):
            state = ProcessorState(testmodel)
            control = PipelineControl()
            program.load_into(state)
            table = SimulationCompiler(testmodel).compile(
                program, state, control, level=level
            )
            # Drive the table directly through the generic driver.
            from repro.machine.driver import Pipeline

            pipe = Pipeline(
                testmodel, state, control, table.make_frontend(testmodel)
            )
            pipe.run(1000)
            results.append(state.snapshot())
        assert results[0] == results[1]

    def test_undecodable_program_rejected_at_compile_time(self, testmodel):
        program = Program(entry=0)
        program.add_segment("pmem", 0, [0b0_0110_000_00000000])  # bad opcode
        state = ProcessorState(testmodel)
        control = PipelineControl()
        program.load_into(state)
        with pytest.raises(DecodeError):
            SimulationCompiler(testmodel).compile(program, state, control)


class TestVliwPackets:
    def test_packets_merge_member_ops(self, c62x, c62x_tools):
        program = c62x_tools.assembler.assemble_text("""
        mvk a1, 1
     || mvk a2, 2
     || mvk a3, 3
        halt
""")
        state = ProcessorState(c62x)
        control = PipelineControl()
        program.load_into(state)
        table = SimulationCompiler(c62x).compile(program, state, control)
        e1 = c62x.pipeline.stage_index("E1")
        # Packet starting at 0 spans 3 words and has 3 E1 micro-ops.
        slot = table.slots[0]
        assert slot.words == 3
        assert slot.insn_count == 3
        assert len(slot.ops_by_stage[e1]) == 3
        # Entry in the middle of the packet is still compiled (branch
        # targets may land there).
        assert table.slots[1].words == 2
        assert table.slots[2].words == 1

    def test_generator_validates_model(self, c62x):
        compiler = generate_simulation_compiler(c62x, validate=True)
        assert compiler.model is c62x
