"""Tests for the persistent simulation-table cache and parallel builds.

Covers the cache contract end to end: content addressing (hits), exact
invalidation (model edit, program edit, level change, format bump),
corrupted-entry recovery, and the two bit-identity guarantees -- cached
vs freshly compiled simulation, and parallel vs serial table builds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lisa.semantics import compile_source
from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.sim import create_simulator
from repro.simcc import cache as cache_mod
from repro.simcc.cache import SimulationCache, model_digest, table_digest
from repro.simcc.generator import generate_simulation_compiler
from repro.simcc.portable import build_portable_table
from tests.conftest import TESTMODEL_SOURCE

PROGRAM_TEXT = """
start:  ldi r1, 5
        ldi r2, 7
        add r3, r1, r2
        st r3, 9
        halt
"""


@pytest.fixture(scope="module")
def program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text(PROGRAM_TEXT)


@pytest.fixture
def cache(tmp_path):
    return SimulationCache(tmp_path / "simtab")


def _fresh_engine(testmodel, program):
    state = ProcessorState(testmodel)
    control = PipelineControl()
    program.load_into(state)
    return state, control


def _load(testmodel, program, cache, level="sequenced", jobs=None):
    simcc = generate_simulation_compiler(testmodel, validate=False)
    state, control = _fresh_engine(testmodel, program)
    return cache.load_table(simcc, program, state, control,
                            level=level, jobs=jobs)


class TestHitMiss:
    def test_cold_load_misses_and_stores(self, testmodel, program, cache):
        table = _load(testmodel, program, cache)
        assert table.word_count == 5
        assert cache.stats["misses"] == 1
        assert cache.stats["stores"] == 1
        assert cache.stats["memory_hits"] == 0
        assert cache.stats["disk_hits"] == 0

    def test_entry_lands_at_content_address(self, testmodel, program, cache):
        import os

        _load(testmodel, program, cache)
        digest = table_digest(testmodel, program, "sequenced")
        assert os.path.exists(cache.entry_path(digest))

    def test_second_load_hits_memory(self, testmodel, program, cache):
        _load(testmodel, program, cache)
        _load(testmodel, program, cache)
        assert cache.stats["memory_hits"] == 1
        assert cache.stats["misses"] == 1

    def test_fresh_process_hits_disk(self, testmodel, program, cache):
        _load(testmodel, program, cache)
        reopened = SimulationCache(cache.root)
        _load(testmodel, program, reopened)
        assert reopened.stats["disk_hits"] == 1
        assert reopened.stats["misses"] == 0

    def test_memory_lru_evicts_oldest(self, testmodel, program,
                                      testmodel_tools, tmp_path):
        small = SimulationCache(tmp_path / "lru", max_memory_entries=1)
        other = testmodel_tools.assembler.assemble_text("""
        ldi r1, 1
        halt
        """)
        _load(testmodel, program, small)
        _load(testmodel, other, small)   # evicts `program`
        _load(testmodel, program, small)
        assert small.stats["memory_hits"] == 0
        assert small.stats["disk_hits"] == 1


class TestInvalidation:
    def test_model_edit_changes_digest(self, testmodel, program):
        edited_source = TESTMODEL_SOURCE.replace(
            "BEHAVIOR { dst = src1 + src2; }",
            "BEHAVIOR { dst = src1 + src2 + 1; }",
        )
        assert edited_source != TESTMODEL_SOURCE
        edited = compile_source(edited_source, "edited.lisa")
        assert model_digest(edited) != model_digest(testmodel)
        assert (table_digest(edited, program, "sequenced")
                != table_digest(testmodel, program, "sequenced"))

    def test_model_edit_misses(self, testmodel, program, cache):
        _load(testmodel, program, cache)
        edited = compile_source(
            TESTMODEL_SOURCE.replace("dst = sext(imm, 8);",
                                     "dst = sext(imm + 1, 8);"),
            "edited.lisa",
        )
        _load(edited, program, cache)
        assert cache.stats["misses"] == 2
        assert cache.stats["stores"] == 2

    def test_program_edit_misses(self, testmodel, program,
                                 testmodel_tools, cache):
        _load(testmodel, program, cache)
        edited = testmodel_tools.assembler.assemble_text(
            PROGRAM_TEXT.replace("ldi r1, 5", "ldi r1, 6")
        )
        _load(testmodel, edited, cache)
        assert cache.stats["misses"] == 2

    def test_level_change_misses(self, testmodel, program, cache):
        _load(testmodel, program, cache, level="sequenced")
        _load(testmodel, program, cache, level="instantiated")
        assert cache.stats["misses"] == 2
        assert (table_digest(testmodel, program, "sequenced")
                != table_digest(testmodel, program, "instantiated"))

    def test_format_bump_misses(self, testmodel, program, cache,
                                monkeypatch):
        _load(testmodel, program, cache)
        monkeypatch.setattr(cache_mod, "FORMAT_VERSION",
                            cache_mod.FORMAT_VERSION + 1)
        reopened = SimulationCache(cache.root)
        _load(testmodel, program, reopened)
        assert reopened.stats["disk_hits"] == 0
        assert reopened.stats["misses"] == 1


class TestCorruption:
    def _entry_path(self, testmodel, program, cache):
        return cache.entry_path(
            table_digest(testmodel, program, "sequenced")
        )

    def test_garbage_entry_recovers(self, testmodel, program, cache):
        import os

        _load(testmodel, program, cache)
        path = self._entry_path(testmodel, program, cache)
        with open(path, "wb") as handle:
            handle.write(b"repro-simtab\nnot marshal data")
        reopened = SimulationCache(cache.root)
        table = _load(testmodel, program, reopened)
        assert table.word_count == 5
        assert reopened.stats["corrupt_entries"] == 1
        assert reopened.stats["misses"] == 1
        assert reopened.stats["stores"] == 1
        # The corrupt file was quarantined, then replaced by the store.
        assert os.path.exists(path)

    def test_bad_magic_quarantined(self, testmodel, program, cache):
        import os

        _load(testmodel, program, cache)
        path = self._entry_path(testmodel, program, cache)
        with open(path, "wb") as handle:
            handle.write(b"something else entirely")
        reopened = SimulationCache(cache.root, max_memory_entries=0)
        assert reopened.load_portable(testmodel, program,
                                      "sequenced") is None
        assert reopened.stats["corrupt_entries"] == 1
        assert not os.path.exists(path)

    def test_unwritable_store_degrades_to_uncached(self, testmodel,
                                                   program, tmp_path):
        # Cache root is a regular file: every disk store fails, but
        # simulation must proceed (and the in-process LRU still works).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        broken = SimulationCache(blocker)
        table = _load(testmodel, program, broken)
        assert table.word_count == 5
        assert broken.stats["store_errors"] == 1
        assert broken.stats["stores"] == 0
        _load(testmodel, program, broken)
        assert broken.stats["memory_hits"] == 1

    def test_truncated_entry_recovers(self, testmodel, program, cache):
        _load(testmodel, program, cache)
        path = self._entry_path(testmodel, program, cache)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        reopened = SimulationCache(cache.root)
        table = _load(testmodel, program, reopened)
        assert table.word_count == 5
        assert reopened.stats["corrupt_entries"] == 1


class TestExecutionEquality:
    """Cached simulations must be bit-identical to fresh compiles."""

    @pytest.mark.parametrize(
        "kind", ["compiled", "static", "unfolded", "unfolded_static"]
    )
    def test_cached_matches_uncached(self, testmodel, program, tmp_path,
                                     kind):
        reference = create_simulator(testmodel, kind)
        reference.load_program(program)
        ref_stats = reference.run()

        cold = SimulationCache(tmp_path / "eq")
        warm = SimulationCache(tmp_path / "eq")  # fresh LRU: forces disk
        for cache in (cold, warm):
            simulator = create_simulator(testmodel, kind, cache=cache)
            simulator.load_program(program)
            stats = simulator.run()
            assert stats.cycles == ref_stats.cycles
            assert stats.instructions == ref_stats.instructions
            assert simulator.state.differences(reference.state) == []
        assert cold.stats["stores"] == 1
        assert warm.stats["disk_hits"] == 1


class TestFormatV3Migration:
    """Format 4 added native artifacts: a v3 entry that strayed into
    this version's namespace must read as a clean miss -- not an error,
    not quarantined -- exactly like the v2 entries before it."""

    def test_v3_entry_is_clean_miss(self, testmodel, program, cache):
        import marshal
        import os

        from repro.simcc.cache import _MAGIC

        _load(testmodel, program, cache)
        path = cache.entry_path(
            table_digest(testmodel, program, "sequenced")
        )
        with open(path, "rb") as handle:
            blob = handle.read()
        payload = marshal.loads(blob[len(_MAGIC):])
        payload["meta"]["format"] = 3
        with open(path, "wb") as handle:
            handle.write(_MAGIC + marshal.dumps(payload))

        reopened = SimulationCache(cache.root, max_memory_entries=0)
        assert reopened.load_portable(testmodel, program,
                                      "sequenced") is None
        assert reopened.stats["misses"] == 1
        assert reopened.stats["corrupt_entries"] == 0
        assert os.path.exists(path)  # left alone, not quarantined

        # A full reload recompiles and republishes over it.
        table = _load(testmodel, program, reopened)
        assert table.word_count == 5
        assert reopened.stats["stores"] == 1


class TestFormatV4Migration:
    """Format 5 added persisted absint proofs: a v4 entry in this
    version's namespace must read as one clean miss, reported through
    the observer as a single ``prior_format`` cache event -- mirroring
    the v3 behaviour before it."""

    def _downgrade(self, testmodel, program, cache):
        import marshal

        from repro.simcc.cache import _MAGIC

        _load(testmodel, program, cache)
        path = cache.entry_path(
            table_digest(testmodel, program, "sequenced")
        )
        with open(path, "rb") as handle:
            blob = handle.read()
        payload = marshal.loads(blob[len(_MAGIC):])
        payload["meta"]["format"] = 4
        with open(path, "wb") as handle:
            handle.write(_MAGIC + marshal.dumps(payload))
        return path

    def test_v4_entry_is_clean_miss(self, testmodel, program, cache):
        import os

        path = self._downgrade(testmodel, program, cache)
        reopened = SimulationCache(cache.root, max_memory_entries=0)
        assert reopened.load_portable(testmodel, program,
                                      "sequenced") is None
        assert reopened.stats["misses"] == 1
        assert reopened.stats["format_misses"] == 1
        assert reopened.stats["corrupt_entries"] == 0
        assert os.path.exists(path)  # left alone, not quarantined

        # A full reload recompiles and republishes over it.
        table = _load(testmodel, program, reopened)
        assert table.word_count == 5
        assert reopened.stats["stores"] == 1

    def test_prior_format_miss_emits_one_flagged_event(
        self, testmodel, program, cache
    ):
        from repro import obs

        self._downgrade(testmodel, program, cache)
        reopened = SimulationCache(cache.root, max_memory_entries=0)
        sink = obs.ListSink()
        observer = obs.Observer(sinks=(sink,))
        simcc = generate_simulation_compiler(testmodel, validate=False)
        state, control = _fresh_engine(testmodel, program)
        reopened.load_table(simcc, program, state, control,
                            level="sequenced", observer=observer)
        misses = [event for event in sink.events
                  if event.kind == obs.CACHE
                  and event.args["outcome"] == "miss"]
        assert len(misses) == 1
        assert misses[0].args.get("prior_format") is True

    def test_current_format_miss_is_not_flagged(self, testmodel, program,
                                                cache):
        from repro import obs

        sink = obs.ListSink()
        observer = obs.Observer(sinks=(sink,))
        simcc = generate_simulation_compiler(testmodel, validate=False)
        state, control = _fresh_engine(testmodel, program)
        cache.load_table(simcc, program, state, control,
                         level="sequenced", observer=observer)
        misses = [event for event in sink.events
                  if event.kind == obs.CACHE
                  and event.args["outcome"] == "miss"]
        assert len(misses) == 1
        assert "prior_format" not in misses[0].args


class TestNativeArtifacts:
    """Native burst artifacts (.c + .so + metadata) in the cache."""

    KEY = "ab" * 32  # a well-formed sha256 hex key
    COMPILER = "fake-cc 1.0 | -O2 -shared -fPIC"

    @staticmethod
    def _compile_fn(c_path, so_path):
        with open(so_path, "wb") as handle:
            handle.write(b"fake shared object")

    def _meta_path(self, so_path):
        return so_path[: -len(".so")] + ".json"

    def test_store_then_load_round_trips(self, cache):
        import os

        c_path, so_path = cache.store_native_artifact(
            self.KEY, self.COMPILER, "/* burst */", self._compile_fn
        )
        assert cache.stats["native_stores"] == 1
        assert open(c_path).read() == "/* burst */"
        assert os.path.exists(so_path)
        assert cache.load_native_artifact(
            self.KEY, self.COMPILER
        ) == (c_path, so_path)
        assert cache.stats["native_hits"] == 1

    def test_missing_artifact_is_miss(self, cache):
        assert cache.load_native_artifact(self.KEY, self.COMPILER) is None
        assert cache.stats["native_misses"] == 1

    def test_stale_compiler_identity_misses(self, cache):
        """A shared object built by another compiler version must never
        be loaded -- it misses and gets rebuilt."""
        cache.store_native_artifact(
            self.KEY, self.COMPILER, "/* burst */", self._compile_fn
        )
        assert cache.load_native_artifact(
            self.KEY, "fake-cc 2.0 | -O2 -shared -fPIC"
        ) is None
        assert cache.stats["native_misses"] == 1
        # The exact identity still hits.
        assert cache.load_native_artifact(
            self.KEY, self.COMPILER
        ) is not None
        assert cache.stats["native_hits"] == 1

    def test_stale_format_version_misses(self, cache):
        import json

        _, so_path = cache.store_native_artifact(
            self.KEY, self.COMPILER, "/* burst */", self._compile_fn
        )
        meta_path = self._meta_path(so_path)
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["format"] = 3
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        assert cache.load_native_artifact(self.KEY, self.COMPILER) is None
        assert cache.stats["native_misses"] == 1

    def test_crashed_build_is_never_published(self, cache):
        """Metadata is written last: a compile that dies mid-way leaves
        no loadable artifact behind."""

        def boom(c_path, so_path):
            raise OSError("compiler exploded")

        with pytest.raises(OSError):
            cache.store_native_artifact(
                self.KEY, self.COMPILER, "/* burst */", boom
            )
        assert cache.stats["native_stores"] == 0
        assert cache.load_native_artifact(self.KEY, self.COMPILER) is None

    def test_end_to_end_native_build_hits_cache(self, testmodel, program,
                                                cache):
        """Two native-backed simulators on one cache: the second loads
        the first's artifact instead of invoking the compiler."""
        from repro.simcc.native import native_available

        if not native_available():
            pytest.skip("no usable C compiler on the host")
        first = create_simulator(testmodel, "unfolded", cache=cache,
                                 backend="native")
        first.load_program(program)
        first.run()
        assert cache.stats["native_stores"] == 1

        second = create_simulator(testmodel, "unfolded", cache=cache,
                                  backend="native")
        second.load_program(program)
        second.run()
        assert cache.stats["native_stores"] == 1
        assert cache.stats["native_hits"] == 1
        assert second.state.differences(first.state) == []


# A pool of valid testmodel instructions for generated programs.  The
# terminating `halt` is appended outside the strategy so every program
# drains.
_INSTRUCTIONS = st.sampled_from([
    "nop",
    "ldi r1, 5",
    "ldi r2, 250",
    "add r3, r1, r2",
    "addl r4, r3, r2",
    "add r5, r5, r1",
    "st r3, 9",
    "st r5, 10",
])


class TestParallelSerial:
    """Parallel table builds must be bit-identical to serial ones."""

    @settings(max_examples=8, deadline=None)
    @given(st.lists(_INSTRUCTIONS, min_size=1, max_size=24))
    def test_parallel_build_bit_identical(self, testmodel, testmodel_tools,
                                          lines):
        # Generated programs are tiny; drop the fan-out threshold so the
        # parallel path actually exercises the worker pool.  Patched
        # manually (not via monkeypatch) because hypothesis re-runs the
        # test body many times per fixture instantiation.
        from repro.simcc import parallel

        source = "\n".join(lines + ["halt"])
        program = testmodel_tools.assembler.assemble_text(source)
        saved = parallel.MIN_PARALLEL_ITEMS
        parallel.MIN_PARALLEL_ITEMS = 1
        try:
            serial = build_portable_table(testmodel, program, jobs=1)
            fanned = build_portable_table(testmodel, program, jobs=2)
        finally:
            parallel.MIN_PARALLEL_ITEMS = saved
        assert (serial.to_payload(with_code=False)
                == fanned.to_payload(with_code=False))

    def test_parallel_execution_bit_identical(self, testmodel,
                                              testmodel_tools, monkeypatch):
        from repro.simcc import parallel

        monkeypatch.setattr(parallel, "MIN_PARALLEL_ITEMS", 1)
        program = testmodel_tools.assembler.assemble_text(PROGRAM_TEXT)

        serial = create_simulator(testmodel, "compiled")
        serial.load_program(program)
        serial_stats = serial.run()

        fanned = create_simulator(testmodel, "compiled", jobs=2)
        fanned.load_program(program)
        fanned_stats = fanned.run()

        assert fanned_stats.cycles == serial_stats.cycles
        assert fanned_stats.instructions == serial_stats.instructions
        assert fanned.state.differences(serial.state) == []


class TestScheduleSafetyRoundTrip:
    """Hazard verdicts survive the portable payload and the disk cache."""

    def test_portable_table_carries_verdicts(self, testmodel, program):
        portable = build_portable_table(testmodel, program)
        assert portable.schedule_safety is not None
        assert set(portable.schedule_safety.values()) <= {
            "hazard_free", "conflicting", "unknown"
        }

    def test_payload_round_trip(self, testmodel, program):
        from repro.simcc.portable import PortableTable

        portable = build_portable_table(testmodel, program)
        clone = PortableTable.from_payload(portable.to_payload())
        assert clone.schedule_safety == portable.schedule_safety

    def test_bound_table_inherits_verdicts(self, testmodel, program):
        portable = build_portable_table(testmodel, program)
        state, control = _fresh_engine(testmodel, program)
        table = portable.bind(state, control)
        assert table.schedule_safety == portable.schedule_safety

    def test_disk_round_trip(self, testmodel, program, cache):
        fresh = _load(testmodel, program, cache)
        reopened = SimulationCache(cache.root)
        warmed = _load(testmodel, program, reopened)
        assert reopened.stats["disk_hits"] == 1
        assert warmed.schedule_safety == fresh.schedule_safety
        assert warmed.schedule_safety is not None

    def test_cached_and_compiled_verdicts_agree(self, testmodel, program,
                                                cache):
        cached = _load(testmodel, program, cache)
        simcc = generate_simulation_compiler(testmodel, validate=False)
        state, control = _fresh_engine(testmodel, program)
        compiled = simcc.compile(program, state, control)
        assert cached.schedule_safety == compiled.schedule_safety

    def test_emitted_module_carries_verdicts(self, testmodel, program):
        from repro.simcc.emit import render_module

        portable = build_portable_table(testmodel, program)
        source = render_module(testmodel, program, portable)
        namespace = {}
        exec(compile(source, "<emitted>", "exec"), namespace)
        assert namespace["SCHEDULE_SAFETY"] == portable.schedule_safety


def _race_store(root, rounds):
    """Worker for the concurrent-writer stress test (spawn-safe).

    Rebuilds the model and program from source (code objects do not
    pickle, so nothing compiled can cross the process boundary) and
    hammers ``store_portable`` on the one shared content address.
    """
    model = compile_source(TESTMODEL_SOURCE, "testmodel.lisa")
    from repro.api import build_toolset

    program = build_toolset(model).assembler.assemble_text(PROGRAM_TEXT)
    portable = build_portable_table(model, program)
    cache = SimulationCache(root, max_memory_entries=0)
    for _ in range(rounds):
        cache.store_portable(model, program, "sequenced", portable)
    if cache.stats["store_errors"]:
        raise RuntimeError(
            "store_errors=%d" % cache.stats["store_errors"]
        )


class TestConcurrentWriters:
    """Two processes racing ``store_portable`` on the same digest must
    never leave a torn entry: publication is atomic (write-to-temp then
    rename), so a reader always sees either nothing or a full entry."""

    def test_racing_stores_leave_coherent_entry(self, testmodel, program,
                                                tmp_path):
        import multiprocessing

        root = str(tmp_path / "shared-simtab")
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=_race_store, args=(root, 12))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        for worker in workers:
            assert not worker.is_alive(), "racing writer hung"
            assert worker.exitcode == 0

        # A fresh reader must get a clean disk hit -- no quarantine.
        reader = SimulationCache(root, max_memory_entries=0)
        table = _load(testmodel, program, reader)
        assert reader.stats["disk_hits"] == 1
        assert reader.stats["corrupt_entries"] == 0
        assert reader.stats["misses"] == 0
        assert table.word_count == 5

        # The surviving entry runs bit-identically to a fresh compile.
        reference = create_simulator(testmodel, "compiled")
        reference.load_program(program)
        reference.run()
        cached = create_simulator(
            testmodel, "compiled", cache=SimulationCache(root)
        )
        cached.load_program(program)
        cached.run()
        assert cached.state.differences(reference.state) == []

    def test_interleaved_store_and_load_same_process(self, testmodel,
                                                     program, tmp_path):
        # Two handles on one root: one stores while the other reads.
        root = tmp_path / "shared-simtab"
        writer = SimulationCache(root, max_memory_entries=0)
        reader = SimulationCache(root, max_memory_entries=0)
        assert reader.load_portable(testmodel, program, "sequenced") is None
        _load(testmodel, program, writer)
        assert (
            reader.load_portable(testmodel, program, "sequenced")
            is not None
        )
        assert reader.stats["corrupt_entries"] == 0


class TestFaultHarnessCorruption:
    """Cache damage injected through ``repro.resilience.faults``.

    Corruption (torn write, foreign file, bit rot) must quarantine:
    ``corrupt_entries`` counts it and the load degrades to a clean
    recompile.  A *format* mismatch is not corruption -- it is an entry
    written by another tool version -- so it must read as a clean miss
    with the file left alone.
    """

    @pytest.fixture
    def injector(self):
        from repro.resilience import FaultInjector

        return FaultInjector()

    @pytest.mark.parametrize("mode", ["truncate", "magic", "garbage"])
    def test_corruption_quarantines_and_recovers(self, testmodel, program,
                                                 cache, injector, mode):
        import os

        _load(testmodel, program, cache)
        path = injector.corrupt_cache_entry(
            cache, testmodel, program, mode=mode
        )
        reopened = SimulationCache(cache.root)
        table = _load(testmodel, program, reopened)
        assert reopened.stats["corrupt_entries"] == 1
        assert reopened.stats["disk_hits"] == 0
        assert reopened.stats["misses"] == 1
        assert table.word_count == 5
        # Quarantine unlinked the bad file; the recompile republished it.
        assert reopened.stats["stores"] == 1
        assert os.path.exists(path)
        final = SimulationCache(cache.root)
        _load(testmodel, program, final)
        assert final.stats["disk_hits"] == 1
        assert final.stats["corrupt_entries"] == 0

    def test_corrupting_missing_entry_raises(self, testmodel, program,
                                             cache, injector):
        from repro.support.errors import ReproError

        with pytest.raises(ReproError, match="no cache entry"):
            injector.corrupt_cache_entry(cache, testmodel, program)

    def test_format_spoof_is_clean_miss(self, testmodel, program, cache,
                                        injector):
        import os

        path = injector.spoof_cache_format(
            cache, testmodel, program, format_version=0
        )
        blob = open(path, "rb").read()
        reopened = SimulationCache(cache.root, max_memory_entries=0)
        assert reopened.load_portable(testmodel, program,
                                      "sequenced") is None
        assert reopened.stats["corrupt_entries"] == 0
        assert reopened.stats["misses"] == 1
        # The foreign-version entry is left exactly as written.
        assert os.path.exists(path)
        assert open(path, "rb").read() == blob

    def test_future_format_is_clean_miss(self, testmodel, program, cache,
                                         injector):
        injector.spoof_cache_format(
            cache, testmodel, program,
            format_version=cache_mod.FORMAT_VERSION + 7,
        )
        reopened = SimulationCache(cache.root)
        table = _load(testmodel, program, reopened)
        assert reopened.stats["corrupt_entries"] == 0
        assert reopened.stats["misses"] == 1
        assert table.word_count == 5

    def test_fault_log_records_cache_faults(self, testmodel, program,
                                            cache, injector):
        _load(testmodel, program, cache)
        injector.corrupt_cache_entry(cache, testmodel, program,
                                     mode="garbage")
        injector.spoof_cache_format(cache, testmodel, program)
        kinds = [entry["fault"] for entry in injector.log]
        assert kinds == ["cache_corruption", "cache_format_spoof"]


def _race_window_build(root, rounds):
    """Worker for the windowed-artifact race (spawn-safe).

    Each round runs the tiered promotion build path --
    ``build_window_table`` through the cache's single-flight
    get-or-build -- against the one shared windowed content address.
    """
    from repro.simcc.partial import build_window_table

    model = compile_source(TESTMODEL_SOURCE, "testmodel.lisa")
    from repro.api import build_toolset

    program = build_toolset(model).assembler.assemble_text(PROGRAM_TEXT)
    cache = SimulationCache(root, max_memory_entries=0)
    for _ in range(rounds):
        portable = build_window_table(
            model, program, 0, 5, level="instantiated", cache=cache
        )
        if portable.window != (0, 5):
            raise RuntimeError("window lost: %r" % (portable.window,))
    if cache.stats["store_errors"]:
        raise RuntimeError(
            "store_errors=%d" % cache.stats["store_errors"]
        )
    if cache.stats["corrupt_entries"]:
        raise RuntimeError(
            "corrupt_entries=%d" % cache.stats["corrupt_entries"]
        )


class TestWindowedEntries:
    """Format v6: windowed (partial) table payloads for tiered
    promotion -- distinct content addresses, single-flight builds, and
    atomic publication under racing processes."""

    def test_window_changes_digest(self, testmodel, program):
        plain = table_digest(testmodel, program, "instantiated")
        windowed = table_digest(testmodel, program, "instantiated",
                                window=(0, 5))
        other = table_digest(testmodel, program, "instantiated",
                             window=(0, 4))
        assert len({plain, windowed, other}) == 3

    def test_window_round_trips(self, testmodel, program, cache):
        from repro.simcc.partial import (
            build_window_table,
            extract_window_program,
        )

        built = build_window_table(testmodel, program, 0, 5,
                                   level="instantiated", cache=cache)
        assert built.window == (0, 5)
        assert cache.stats["stores"] == 1

        patch = extract_window_program(testmodel, program, 0, 5)
        reader = SimulationCache(cache.root, max_memory_entries=0)
        loaded = reader.load_portable(testmodel, patch, "instantiated",
                                      window=(0, 5))
        assert loaded is not None
        assert loaded.window == (0, 5)
        assert reader.stats["disk_hits"] == 1

    def test_single_flight_builds_once(self, testmodel, program, cache):
        import threading

        from repro.simcc.partial import extract_window_program

        patch = extract_window_program(testmodel, program, 0, 5)
        built = []
        gate = threading.Event()

        def builder():
            gate.wait(10)
            built.append(1)
            return build_portable_table(testmodel, patch, "instantiated")

        def flight():
            cache.load_or_build_portable(
                testmodel, patch, "instantiated", builder, window=(0, 5)
            )

        flights = [threading.Thread(target=flight) for _ in range(4)]
        for thread in flights:
            thread.start()
        gate.set()
        for thread in flights:
            thread.join(timeout=60)
        assert len(built) == 1
        assert cache.stats["single_flight_waits"] >= 1
        assert cache.stats["stores"] == 1

    def test_racing_processes_leave_coherent_windowed_entry(
            self, testmodel, program, tmp_path):
        import multiprocessing

        from repro.simcc.partial import extract_window_program

        root = str(tmp_path / "shared-simtab")
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=_race_window_build, args=(root, 8))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        for worker in workers:
            assert not worker.is_alive(), "racing windowed builder hung"
            assert worker.exitcode == 0

        # A fresh reader gets a clean disk hit on the windowed address.
        patch = extract_window_program(testmodel, program, 0, 5)
        reader = SimulationCache(root, max_memory_entries=0)
        loaded = reader.load_portable(testmodel, patch, "instantiated",
                                      window=(0, 5))
        assert loaded is not None
        assert loaded.window == (0, 5)
        assert reader.stats["disk_hits"] == 1
        assert reader.stats["corrupt_entries"] == 0
