"""Cross-cutting simulator tests: agreement, lifecycle, statistics."""

import pytest

from repro.sim import SIM_KINDS, create_simulator
from repro.support.errors import ReproError, SimulationError

PROGRAMS = {
    "straight_line": """
        ldi r1, 5
        add r2, r1, r1
        st r2, 3
        halt
""",
    "loop": """
        ldi r1, 6
        ldi r2, -1
loop:   add r3, r3, r1
        add r1, r1, r2
        brnz r1, loop
        st r3, 5
        halt
""",
    "branch_dance": """
        ldi r1, 1
        brnz r1, a
        ldi r4, 9
a:      brnz r1, b
        ldi r5, 9
b:      ldi r6, 2
        halt
""",
    "saturating_modes": """
        ldi r1, 127
        add r1, r1, r1
        add r1, r1, r1
        add r1, r1, r1
        add r1, r1, r1
        add r1, r1, r1
        add r1, r1, r1
        add r1, r1, r1     ; r1 = 127 * 128 = 16256
        add r2, r1, r1     ; 32512
        addl r3, r1, r2    ; mode bit set: saturates to 8 bits (127)
        add r4, r1, r2     ; mode bit clear: wraps in 32 bits
        st r3, 1
        halt
""",
}


def run_program(testmodel, testmodel_tools, source, kind):
    program = testmodel_tools.assembler.assemble_text(source)
    simulator = create_simulator(testmodel, kind)
    simulator.load_program(program)
    stats = simulator.run(max_cycles=100_000)
    return simulator, stats


class TestAgreement:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_all_kinds_bit_identical(self, testmodel, testmodel_tools, name):
        source = PROGRAMS[name]
        reference = None
        for kind in SIM_KINDS:
            simulator, stats = run_program(
                testmodel, testmodel_tools, source, kind
            )
            signature = (
                stats.cycles, stats.instructions,
                simulator.state.snapshot(),
            )
            if reference is None:
                reference = signature
            else:
                assert signature == reference, (
                    "%s disagrees on %s" % (kind, name)
                )


class TestLifecycle:
    def test_run_without_program_rejected(self, testmodel):
        simulator = create_simulator(testmodel, "compiled")
        with pytest.raises(SimulationError):
            simulator.run()

    def test_reset_reruns_identically(self, testmodel, testmodel_tools):
        simulator, stats = run_program(
            testmodel, testmodel_tools, PROGRAMS["loop"], "compiled"
        )
        first = (stats.cycles, simulator.state.snapshot())
        simulator.reset()
        stats2 = simulator.run(max_cycles=100_000)
        assert (stats2.cycles, simulator.state.snapshot()) == first

    def test_reset_without_program_rejected(self, testmodel):
        simulator = create_simulator(testmodel, "interpretive")
        with pytest.raises(SimulationError):
            simulator.reset()

    def test_halted_property(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("halt")
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(program)
        assert not simulator.halted
        simulator.run()
        assert simulator.halted

    def test_step_advances_one_cycle(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("nop\nhalt\n")
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(program)
        simulator.step()
        assert simulator.cycles == 1

    def test_unknown_kind_rejected(self, testmodel):
        with pytest.raises(ReproError):
            create_simulator(testmodel, "quantum")

    def test_kind_attribute(self, testmodel):
        for kind in SIM_KINDS:
            assert create_simulator(testmodel, kind).kind == kind


class TestStats:
    def test_cpi(self, testmodel, testmodel_tools):
        simulator, stats = run_program(
            testmodel, testmodel_tools, PROGRAMS["straight_line"],
            "compiled",
        )
        assert stats.instructions == 4
        assert stats.cpi == stats.cycles / 4

    def test_cpi_with_no_instructions(self, testmodel):
        import math

        from repro.sim.base import SimulationStats

        stats = SimulationStats(cycles=5, instructions=0)
        assert math.isnan(stats.cpi)
        assert stats.to_dict()["cpi"] is None

    def test_wall_time_and_speed(self, testmodel, testmodel_tools):
        _, stats = run_program(
            testmodel, testmodel_tools, PROGRAMS["straight_line"],
            "compiled",
        )
        assert stats.wall_seconds > 0
        assert stats.simulated_cycles_per_second > 0
        assert stats.simulated_cycles_per_second == pytest.approx(
            stats.cycles / stats.wall_seconds
        )


class TestRunaway:
    def test_infinite_loop_hits_cycle_limit(self, testmodel,
                                            testmodel_tools):
        source = """
        ldi r1, 1
loop:   brnz r1, loop
"""
        for kind in ("interpretive", "compiled", "static"):
            program = testmodel_tools.assembler.assemble_text(source)
            simulator = create_simulator(testmodel, kind)
            simulator.load_program(program)
            with pytest.raises(SimulationError):
                simulator.run(max_cycles=500)

    def test_running_off_the_end_traps(self, testmodel, testmodel_tools):
        program = testmodel_tools.assembler.assemble_text("nop\nnop\n")
        for kind in ("interpretive", "compiled", "static"):
            simulator = create_simulator(testmodel, kind)
            simulator.load_program(program)
            with pytest.raises(SimulationError):
                simulator.run(max_cycles=1000)


class TestStaticDriverInternals:
    def test_windows_interned_and_reused(self, testmodel, testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["loop"], "static"
        )
        engine = simulator.engine
        # The loop revisits occupancies: far fewer nodes than cycles.
        assert len(engine._interned) < simulator.cycles

    def test_flush_reinterns_squashed_window(self, testmodel,
                                             testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["branch_dance"], "static"
        )
        # Some interned windows contain bubbles from squashes.
        has_bubbles = any(
            any(pc is None for pc in pcs) and any(pc is not None
                                                  for pc in pcs)
            for pcs in simulator.engine._interned
        )
        assert has_bubbles

    def test_control_windows_not_composed(self, testmodel, testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["loop"], "static"
        )
        nodes = simulator.engine._interned.values()
        assert any(node.column is None for node in nodes)  # brnz windows
        assert any(node.column is not None for node in nodes)


class TestDebuggerPrimitives:
    def test_run_to_pc_breakpoint(self, testmodel, testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["straight_line"],
            "compiled",
        )
        simulator.reset()
        hit = simulator.run_to_pc(2)
        assert hit
        assert simulator.state.pc == 2
        # The instruction at pc 2 has not executed yet (hardware-style).
        assert simulator.state.dmem[3] == 0
        simulator.run()
        assert simulator.state.dmem[3] == 10

    def test_run_until_watchpoint(self, testmodel, testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["loop"], "compiled"
        )
        simulator.reset()
        fired = simulator.run_until(lambda s: s.state.R[3] >= 11)
        assert fired
        assert simulator.state.R[3] == 11  # 6 + 5, mid-loop

    def test_run_until_returns_false_on_halt(self, testmodel,
                                             testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["straight_line"],
            "compiled",
        )
        simulator.reset()
        assert not simulator.run_until(lambda s: False, max_cycles=10_000)
        assert simulator.halted

    def test_run_until_cycle_cap(self, testmodel, testmodel_tools):
        source = "ldi r1, 1\nloop: brnz r1, loop\n"
        program = testmodel_tools.assembler.assemble_text(source)
        from repro.sim import create_simulator

        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(program)
        with pytest.raises(SimulationError):
            simulator.run_until(lambda s: False, max_cycles=100)

    def test_works_on_static_engine(self, testmodel, testmodel_tools):
        simulator, _ = run_program(
            testmodel, testmodel_tools, PROGRAMS["loop"], "static"
        )
        simulator.reset()
        assert simulator.run_to_pc(3)
