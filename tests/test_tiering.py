"""Adaptive tiered execution: profile-guided promotion of hot windows.

The tentpole guarantee: a tiered run is **bit-identical** to the same
simulator with tiering off -- promotion splices change representation,
never architectural behaviour.  These tests check that guarantee over
the application x model matrix with forced mid-run promotions, plus the
adversarial transitions around it:

* a self-modifying store racing a promotion (the guard wins: the
  promoted window demotes, the store's semantics are preserved),
* a checkpoint taken mid-promotion restores bit-exactly on a fresh
  simulator of any kind (tiered or not),
* an injected compile fault during a promotion build aborts that build
  and leaves the running tier untouched,
* a warm cache: the second run of the same workload re-promotes from
  cached windowed artifacts without invoking the C compiler,
* the CLI surface (``--tiering``, ``--tier-report``, ``--stats-json``
  ``tier_timeline``).
"""

from __future__ import annotations

import json

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm
from repro.bench import load_app_program
from repro.resilience import FaultInjector
from repro.sim import create_simulator
from repro.sim.tiering import (
    TIERING_MODES,
    TIMELINE_VERSION,
    TierManager,
    TierPolicy,
)
from repro.simcc.cache import SimulationCache
from repro.simcc.native import native_available
from repro.support.errors import ReproError

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on the host"
)

TABLE_KINDS = ("compiled", "static", "unfolded", "unfolded_static")

LOOP_SOURCE = """
        ldi r1, 40
        ldi r5, 255
loop:   add r2, r2, r1
        add r1, r1, r5
        brnz r1, loop
        st r2, 7
        halt
"""

SMC_SOURCE = """
        ldi r1, 4
        ldi r5, 255
loop:   add r2, r2, r1
patch:  ldi r3, 1
        add r2, r2, r3
        add r1, r1, r5
        brnz r1, loop
        st r2, 7
        halt
"""

#: Fires the patch after the first promotions have landed (the loop is
#: hot from the first poll under the forced policy below).
PATCH_CYCLE = 12

APP_MATRIX = [
    ("fir-c62x", lambda: build_fir("c62x", taps=4, samples=8)),
    ("fir-c54x", lambda: build_fir("c54x", taps=4, samples=8)),
    ("fir-tinydsp", lambda: build_fir("tinydsp", taps=4, samples=8)),
    ("adpcm-c62x", lambda: build_adpcm(samples=16)),
    ("gsm-c62x", lambda: build_gsm(target_words=1024)),
]


def forced_policy(**overrides):
    """An aggressive policy tuned to promote within a few cycles, so
    even the small test programs exercise mid-run transitions."""
    options = dict(mode="aggressive", poll_cycles=3, min_cycles=0,
                   hot_share=0.001, background=False)
    options.update(overrides)
    return TierPolicy(**options)


@pytest.fixture(scope="module")
def loop_program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text(LOOP_SOURCE, name="loop")


@pytest.fixture(scope="module")
def smc_program(testmodel_tools):
    return testmodel_tools.assembler.assemble_text(SMC_SOURCE, name="smc")


@pytest.fixture(scope="module")
def patch_word(testmodel_tools):
    patched = testmodel_tools.assembler.assemble_text("ldi r3, 2")
    return patched.segments_in("pmem")[0].words[0]


def run_pair(model, program, kind, policy, max_cycles=100_000):
    """(reference sim, tiered sim) after complete bit-compared runs."""
    reference = create_simulator(model, kind)
    reference.load_program(program)
    ref_stats = reference.run(max_cycles=max_cycles)
    tiered = create_simulator(model, kind, tiering=policy)
    tiered.load_program(program)
    tier_stats = tiered.run(max_cycles=max_cycles)
    assert tier_stats.cycles == ref_stats.cycles
    assert tier_stats.instructions == ref_stats.instructions
    assert tiered.state.differences(reference.state) == []
    return reference, tiered


def promotions(simulator):
    return [entry for entry in simulator.tier_manager.timeline
            if entry["action"] == "promote"]


class TestPolicy:
    def test_modes(self):
        assert TIERING_MODES == ("off", "auto", "aggressive")

    def test_coerce_off(self):
        assert TierPolicy.coerce(None) is None
        assert TierPolicy.coerce("off") is None

    def test_coerce_mode_string(self):
        policy = TierPolicy.coerce("aggressive")
        assert policy.mode == "aggressive"
        assert policy.poll_cycles < TierPolicy.coerce("auto").poll_cycles

    def test_coerce_policy_passthrough(self):
        policy = forced_policy()
        assert TierPolicy.coerce(policy) is policy

    def test_unknown_mode_rejected(self, testmodel):
        with pytest.raises(ReproError, match="tiering"):
            create_simulator(testmodel, "compiled", tiering="turbo")

    def test_untabled_kinds_rejected(self, testmodel):
        for kind in ("interpretive", "predecoded"):
            with pytest.raises(ReproError, match="table-based"):
                create_simulator(testmodel, kind, tiering="auto")

    def test_native_backend_rejected(self, testmodel):
        with pytest.raises(ReproError, match="mutually exclusive"):
            create_simulator(testmodel, "compiled", backend="native",
                             tiering="auto")

    def test_off_means_no_manager(self, testmodel, loop_program):
        simulator = create_simulator(testmodel, "compiled")
        simulator.load_program(loop_program)
        assert simulator.tier_manager is None


class TestMidRunPromotion:
    @pytest.mark.parametrize("kind", TABLE_KINDS)
    def test_bit_exact_with_forced_promotions(self, testmodel,
                                              loop_program, kind):
        _, tiered = run_pair(testmodel, loop_program, kind,
                             forced_policy())
        assert promotions(tiered), "policy should have promoted mid-run"

    def test_sequenced_base_promotes_through_unfolded(self, testmodel,
                                                      loop_program):
        _, tiered = run_pair(testmodel, loop_program, "compiled",
                             forced_policy())
        tiers = [entry["tier"] for entry in promotions(tiered)]
        assert "unfolded" in tiers

    @needs_cc
    def test_instantiated_base_promotes_to_native(self, testmodel,
                                                  loop_program):
        _, tiered = run_pair(testmodel, loop_program, "unfolded",
                             forced_policy())
        tiers = [entry["tier"] for entry in promotions(tiered)]
        assert tiers and set(tiers) == {"native"}

    def test_auto_mode_string_is_bit_exact(self, testmodel, loop_program):
        # Default "auto" thresholds rarely trigger on a tiny program;
        # the run must still be bit-identical.
        run_pair(testmodel, loop_program, "compiled", "auto")

    def test_background_policy_bit_exact(self, testmodel, loop_program):
        _, tiered = run_pair(testmodel, loop_program, "compiled",
                             forced_policy(background=True))
        # Background builds commit at later polls; the run is short, so
        # promotion count is timing-dependent -- only exactness is
        # guaranteed (asserted inside run_pair).
        assert tiered.tier_manager is not None

    def test_timeline_report_shape(self, testmodel, loop_program):
        _, tiered = run_pair(testmodel, loop_program, "compiled",
                             forced_policy())
        report = tiered.tier_manager.timeline_report()
        assert report["version"] == TIMELINE_VERSION
        assert report["mode"] == "aggressive"
        for entry in report["events"]:
            assert entry["action"] in (
                "promote", "demote", "abort", "quiesce"
            )
            assert entry["tier"] in ("unfolded", "native")
            assert isinstance(entry["cycle"], int)
            assert entry["start"] < entry["limit"]

    def test_promotion_metrics_and_events(self, testmodel, testmodel_tools,
                                          loop_program):
        from repro import obs

        observer = obs.Observer()
        tiered = create_simulator(testmodel, "compiled",
                                  observer=observer,
                                  tiering=forced_policy())
        tiered.load_program(loop_program)
        tiered.run(max_cycles=100_000)
        assert observer.metrics.counters["tiering.promotions"] >= 1
        kinds = {event.kind for event in observer.events}
        assert obs.TIER_PROMOTE in kinds


@pytest.mark.parametrize(
    "builder", [entry[1] for entry in APP_MATRIX],
    ids=[entry[0] for entry in APP_MATRIX],
)
class TestAppMatrixBitExactness:
    """Tiered vs untiered over every app x model pair, with promotions
    actually firing mid-run."""

    def test_aggressive_promotions_bit_exact(self, builder):
        app = builder()
        model, program = load_app_program(app)
        policy = forced_policy(poll_cycles=100, hot_share=0.005)
        _, tiered = run_pair(model, program, "compiled", policy,
                             max_cycles=10_000_000)
        assert promotions(tiered), "no promotion fired mid-run"
        aborts = [entry for entry in tiered.tier_manager.timeline
                  if entry["action"] == "abort"]
        assert aborts == []


class TestSmcVsPromotion:
    """A self-modifying store racing a promoted window: the guard wins.

    The promoted region demotes (timeline ``demote`` with cause
    ``self_modify``), the patched instruction's semantics apply, and
    the final state matches the same kind running untiered under the
    identical injected store."""

    @pytest.mark.parametrize("kind", TABLE_KINDS)
    @pytest.mark.parametrize("policy", ["recompile", "interpret"])
    def test_guard_wins_bit_exact(self, testmodel, smc_program,
                                  patch_word, kind, policy):
        def run(tiering):
            simulator = create_simulator(testmodel, kind,
                                         on_self_modify=policy,
                                         tiering=tiering)
            simulator.load_program(smc_program)
            injector = FaultInjector()
            address = smc_program.symbols["patch"]
            stats = injector.run_with_faults(
                simulator,
                [(PATCH_CYCLE,
                  lambda sim: injector.write_program_word(
                      sim, address, patch_word))],
                max_cycles=100_000,
            )
            return simulator, stats

        reference, ref_stats = run("off")
        tiered, tier_stats = run(forced_policy())
        assert tier_stats.cycles == ref_stats.cycles
        assert tiered.state.differences(reference.state) == []
        assert promotions(tiered), "patch must race a live promotion"
        demotes = [entry for entry in tiered.tier_manager.timeline
                   if entry["action"] == "demote"]
        assert demotes and all(
            entry["cause"] == "self_modify" for entry in demotes
        )

    def test_demotion_metrics(self, testmodel, smc_program, patch_word):
        from repro import obs

        observer = obs.Observer(record=False, mode=obs.PROFILE_MODE)
        tiered = create_simulator(testmodel, "compiled",
                                  observer=observer,
                                  on_self_modify="recompile",
                                  tiering=forced_policy())
        tiered.load_program(smc_program)
        injector = FaultInjector()
        address = smc_program.symbols["patch"]
        injector.run_with_faults(
            tiered,
            [(PATCH_CYCLE,
              lambda sim: injector.write_program_word(
                  sim, address, patch_word))],
            max_cycles=100_000,
        )
        counters = observer.metrics.counters
        assert counters["tiering.demotions"] >= 1
        families = observer.metrics.family("tiering.demotions_by_cause")
        assert families.get("self_modify", 0) >= 1


class TestCheckpointMidPromotion:
    """A checkpoint taken after promotions restores bit-exactly on a
    fresh simulator of any kind -- promotion state is representation,
    not architecture, so none of it crosses the checkpoint."""

    @pytest.fixture(scope="class")
    def mid_promotion(self, testmodel, loop_program):
        simulator = create_simulator(testmodel, "compiled",
                                     tiering=forced_policy())
        simulator.load_program(loop_program)
        for _ in range(30):
            simulator.step()
        assert promotions(simulator), "no promotion before the snapshot"
        snapshot = simulator.checkpoint()
        simulator.run(max_cycles=100_000)
        return snapshot, simulator

    @pytest.mark.parametrize(
        "kind", ("interpretive", "predecoded") + TABLE_KINDS
    )
    def test_restore_on_any_kind(self, testmodel, loop_program,
                                 mid_promotion, kind):
        snapshot, finished = mid_promotion
        fresh = create_simulator(testmodel, kind)
        fresh.load_program(loop_program)
        fresh.restore(snapshot)
        fresh.run(max_cycles=100_000)
        assert fresh.cycles == finished.cycles
        assert fresh.state.differences(finished.state) == []

    def test_restore_on_tiered_simulator(self, testmodel, loop_program,
                                         mid_promotion):
        snapshot, finished = mid_promotion
        fresh = create_simulator(testmodel, "compiled",
                                 tiering=forced_policy())
        fresh.load_program(loop_program)
        fresh.restore(snapshot)
        fresh.run(max_cycles=100_000)
        assert fresh.cycles == finished.cycles
        assert fresh.state.differences(finished.state) == []


class TestCompileFaultDuringPromotion:
    """An injected compile fault inside a promotion build must abort
    that build -- the running tier keeps executing, bit-exactly."""

    def test_synchronous_build_failure_leaves_tier(self, testmodel,
                                                   loop_program):
        injector = FaultInjector()
        tiered = create_simulator(testmodel, "compiled",
                                  tiering=forced_policy())
        tiered.load_program(loop_program)
        with injector.compile_fault():
            tier_stats = tiered.run(max_cycles=100_000)
        reference = create_simulator(testmodel, "compiled")
        reference.load_program(loop_program)
        ref_stats = reference.run(max_cycles=100_000)
        assert tier_stats.cycles == ref_stats.cycles
        assert tiered.state.differences(reference.state) == []
        timeline = tiered.tier_manager.timeline
        assert promotions(tiered) == []
        aborts = [entry for entry in timeline
                  if entry["action"] == "abort"]
        assert aborts and all(
            entry["cause"].startswith("compile_failed")
            for entry in aborts
        )

    def test_background_build_failure_leaves_tier(self, testmodel,
                                                  loop_program):
        injector = FaultInjector()
        tiered = create_simulator(
            testmodel, "compiled",
            tiering=forced_policy(background=True),
        )
        tiered.load_program(loop_program)
        manager = tiered.tier_manager
        with injector.compile_fault():
            # Step until the manager launches its background build,
            # wait for the worker to fail, then let the next poll
            # consume the failure.
            while manager._build is None and not tiered.halted:
                tiered.step()
            build = manager._build
            assert build is not None, "no background build launched"
            assert build._finished.wait(timeout=30)
            tier_stats = tiered.run(max_cycles=100_000)
        reference = create_simulator(testmodel, "compiled")
        reference.load_program(loop_program)
        ref_stats = reference.run(max_cycles=100_000)
        assert tier_stats.cycles == ref_stats.cycles
        assert tiered.state.differences(reference.state) == []
        aborts = [entry for entry in manager.timeline
                  if entry["action"] == "abort"]
        assert aborts


class TestWarmCache:
    """The second tiered run of a workload promotes from cached
    windowed artifacts -- no recompilation, no C compiler."""

    @needs_cc
    def test_second_run_does_not_invoke_cc(self, testmodel, loop_program,
                                           tmp_path, monkeypatch):
        from repro.simcc.native import toolchain

        root = str(tmp_path / "simtab")
        policy = forced_policy()

        first = create_simulator(testmodel, "compiled",
                                 cache=SimulationCache(root),
                                 tiering=policy)
        first.load_program(loop_program)
        first.run(max_cycles=100_000)
        first_tiers = [entry["tier"] for entry in promotions(first)]
        assert "native" in first_tiers

        calls = []
        original = toolchain.compile_shared

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(toolchain, "compile_shared", counting)
        second = create_simulator(testmodel, "compiled",
                                  cache=SimulationCache(root),
                                  tiering=policy)
        second.load_program(loop_program)
        second.run(max_cycles=100_000)
        assert calls == [], "warm run must not re-invoke the C compiler"
        second_tiers = [entry["tier"] for entry in promotions(second)]
        assert "native" in second_tiers
        assert second.state.differences(first.state) == []

    def test_windowed_artifacts_hit_cache(self, testmodel, loop_program,
                                          tmp_path):
        root = str(tmp_path / "simtab")
        policy = forced_policy(promote_native=False)

        first = create_simulator(testmodel, "compiled",
                                 cache=SimulationCache(root),
                                 tiering=policy)
        first.load_program(loop_program)
        first.run(max_cycles=100_000)
        assert promotions(first)

        cache = SimulationCache(root)
        second = create_simulator(testmodel, "compiled", cache=cache,
                                  tiering=policy)
        second.load_program(loop_program)
        second.run(max_cycles=100_000)
        assert promotions(second)
        assert cache.stats["disk_hits"] >= 2  # load-time + window


class TestEngineSurface:
    def test_engine_forwards_inner_attributes(self, testmodel,
                                              loop_program):
        tiered = create_simulator(testmodel, "compiled",
                                  tiering=forced_policy())
        tiered.load_program(loop_program)
        engine = tiered.engine
        assert engine.cycles == 0
        assert engine.manager is tiered.tier_manager
        assert isinstance(engine.manager, TierManager)

    def test_reset_clears_promotions(self, testmodel, loop_program):
        tiered = create_simulator(testmodel, "compiled",
                                  tiering=forced_policy())
        tiered.load_program(loop_program)
        tiered.run(max_cycles=100_000)
        assert promotions(tiered)
        tiered.reset()
        assert tiered.tier_manager.timeline == []
        tiered.run(max_cycles=100_000)
        assert promotions(tiered)


class TestCli:
    def _write_inputs(self, tmp_path):
        from tests.conftest import TESTMODEL_SOURCE

        lisa = tmp_path / "model.lisa"
        lisa.write_text(TESTMODEL_SOURCE)
        asm = tmp_path / "loop.asm"
        asm.write_text(LOOP_SOURCE)
        return str(lisa), str(asm)

    def test_tier_report_written(self, tmp_path, capsys):
        from repro.cli import sim_main

        lisa, asm = self._write_inputs(tmp_path)
        report_path = tmp_path / "tiers.json"
        assert sim_main([lisa, asm, "--tiering", "aggressive",
                         "--tier-report", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["version"] == TIMELINE_VERSION
        assert report["mode"] == "aggressive"
        assert isinstance(report["events"], list)

    def test_stats_json_tier_timeline(self, tmp_path, capsys):
        from repro.cli import sim_main

        lisa, asm = self._write_inputs(tmp_path)
        stats_path = tmp_path / "stats.json"
        assert sim_main([lisa, asm, "--tiering", "auto",
                         "--stats-json", str(stats_path)]) == 0
        payload = json.loads(stats_path.read_text())
        assert "tier_timeline" in payload
        assert isinstance(payload["tier_timeline"], list)

    def test_stats_json_without_tiering_has_no_timeline(self, tmp_path,
                                                        capsys):
        from repro.cli import sim_main

        lisa, asm = self._write_inputs(tmp_path)
        stats_path = tmp_path / "stats.json"
        assert sim_main([lisa, asm,
                         "--stats-json", str(stats_path)]) == 0
        payload = json.loads(stats_path.read_text())
        assert "tier_timeline" not in payload


def _restore_child_main(queue, payload, kind, tiered):
    """Child-process body (module level for spawn): rebuild the world
    from source, restore the autosnapshot payload, finish the run."""
    from tests.conftest import TESTMODEL_SOURCE

    from repro.api import build_toolset
    from repro.lisa.semantics import compile_source
    from repro.resilience.checkpoint import Checkpoint

    model = compile_source(TESTMODEL_SOURCE, "testmodel.lisa")
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(LOOP_SOURCE, name="loop")
    simulator = create_simulator(
        model, kind, tiering=forced_policy() if tiered else "off"
    )
    simulator.load_program(program)
    simulator.restore(Checkpoint.from_payload(payload))
    stats = simulator.run(max_cycles=100_000)
    queue.put((stats.cycles, simulator.state.snapshot()))


class TestFreshProcessRestore:
    """A mid-promotion *autosnapshot* (the streamed payload form the
    service's workers ship over pipes) restores bit-exactly in a fresh
    process that rebuilt model, toolset and program from source --
    nothing process-local (table ids, promoted-window handles, cache
    state) may hide inside the payload."""

    @pytest.fixture(scope="class")
    def streamed_snapshots(self, testmodel, loop_program):
        from repro.resilience import RunBudget

        beats = []
        simulator = create_simulator(testmodel, "compiled",
                                     tiering=forced_policy())
        simulator.load_program(loop_program)

        def on_checkpoint(snapshot):
            beats.append(
                (snapshot.to_payload(), len(promotions(simulator)))
            )

        budget = RunBudget(checkpoint_every=10)
        stats = simulator.run(max_cycles=100_000, budget=budget,
                              on_checkpoint=on_checkpoint)
        mid = [payload for payload, promoted in beats if promoted >= 1]
        assert mid, "no autosnapshot landed after a promotion"
        return mid[0], stats.cycles, simulator.state.snapshot()

    @pytest.mark.parametrize("kind,tiered", [
        ("compiled", True),     # tiered engine again in the child
        ("compiled", False),    # plain table-driven child
        ("interpretive", False),
    ])
    def test_autosnapshot_restores_in_fresh_process(
        self, streamed_snapshots, kind, tiered
    ):
        import multiprocessing

        payload, final_cycles, final_state = streamed_snapshots
        assert payload["cycles"] > 0
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        queue = ctx.Queue()
        process = ctx.Process(
            target=_restore_child_main,
            args=(queue, payload, kind, tiered),
        )
        process.start()
        try:
            child_cycles, child_state = queue.get(timeout=120)
        finally:
            process.join(timeout=60)
        assert process.exitcode == 0
        assert child_cycles == final_cycles
        assert child_state == final_state
