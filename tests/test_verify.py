"""Tests for the SimIR well-formedness verifier.

Two halves.  The *mutation* half hand-builds ill-formed IR -- wrong
canonicalisation width, use-before-def, misplaced control, hanging
loops -- and checks the verifier rejects each with a message naming the
problem; the seeded-pass tests go further and prove that a buggy
optimisation pass is caught by ``run_passes`` with the pass's *name* in
the error.  The *property* half generates random well-formed, trap-free
IR and checks every default pass preserves both verifier-cleanliness
and bit-exact execution semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.simcc import ir, verify
from repro.simcc.verify import IRVerificationError, verify_function


def _func(*ops):
    return ir.IRFunction(name="t", ops=tuple(ops))


def _verify(model, *ops, context=""):
    return verify_function(_func(*ops), model, context=context)


ACC = dict(width=16, signed=True)  # testmodel: REGISTER int16 ACC


class TestValueRules:
    def test_bool_const_rejected(self, testmodel):
        with pytest.raises(IRVerificationError, match="non-integer"):
            _verify(testmodel, ir.Eval(ir.Const(True)))

    def test_unknown_unary_op(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown unary"):
            _verify(testmodel, ir.Eval(ir.Unary("abs", ir.Const(1))))

    def test_unknown_alu_op(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown ALU"):
            _verify(testmodel,
                    ir.Eval(ir.Alu("**", ir.Const(2), ir.Const(3))))

    def test_unknown_intrinsic(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown intrinsic"):
            _verify(testmodel,
                    ir.Eval(ir.Intrinsic("popcount", (ir.Const(1),))))

    def test_intrinsic_arity(self, testmodel):
        with pytest.raises(IRVerificationError, match="takes 2 argument"):
            _verify(testmodel,
                    ir.Eval(ir.Intrinsic("sext", (ir.Const(1),))))

    def test_extension_width_must_be_constant(self, testmodel):
        with pytest.raises(IRVerificationError, match="constant width"):
            _verify(testmodel, ir.Eval(
                ir.Intrinsic("zext", (ir.Const(1), ir.ReadReg("ACC")))
            ))

    def test_extension_width_range(self, testmodel):
        with pytest.raises(IRVerificationError, match="constant width"):
            _verify(testmodel, ir.Eval(
                ir.Intrinsic("sat", (ir.Const(1), ir.Const(99)))
            ))


class TestResourceRules:
    def test_unknown_register(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown register"):
            _verify(testmodel, ir.Eval(ir.ReadReg("NOPE")))

    def test_scalar_read_of_register_file(self, testmodel):
        with pytest.raises(IRVerificationError, match="register file"):
            _verify(testmodel, ir.Eval(ir.ReadReg("R")))

    def test_element_read_of_scalar(self, testmodel):
        with pytest.raises(IRVerificationError, match="scalar register"):
            _verify(testmodel, ir.Eval(ir.ReadElem("ACC", ir.Const(0))))

    def test_element_write_of_unknown_resource(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown resource"):
            _verify(testmodel, ir.WriteElem(
                "ghost", ir.Const(0), ir.Const(1), width=16, signed=False,
            ))


class TestWidthRules:
    def test_wrong_width_rejected(self, testmodel):
        with pytest.raises(IRVerificationError, match="width 8"):
            _verify(testmodel, ir.WriteReg(
                "ACC", ir.Const(1), width=8, signed=True,
            ))

    def test_wrong_signedness_rejected(self, testmodel):
        with pytest.raises(IRVerificationError, match="unsigned"):
            _verify(testmodel, ir.WriteReg(
                "ACC", ir.Const(1), width=16, signed=False,
            ))

    def test_declared_and_raw_widths_accepted(self, testmodel):
        _verify(testmodel, ir.WriteReg("ACC", ir.Const(1), **ACC))
        _verify(testmodel, ir.WriteReg("ACC", ir.Const(1), width=None))


class TestDefiniteAssignment:
    def test_read_before_def(self, testmodel):
        with pytest.raises(IRVerificationError, match="before assignment"):
            _verify(testmodel,
                    ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC))

    def test_def_then_read(self, testmodel):
        _verify(testmodel,
                ir.WriteLocal("x", ir.Const(2)),
                ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC))

    def test_one_sided_guard_definition_is_not_definite(self, testmodel):
        with pytest.raises(IRVerificationError, match="before assignment"):
            _verify(
                testmodel,
                ir.Guard(ir.ReadReg("ACC"),
                         (ir.WriteLocal("x", ir.Const(1)),)),
                ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC),
            )

    def test_both_sided_guard_definition_is_definite(self, testmodel):
        _verify(
            testmodel,
            ir.Guard(ir.ReadReg("ACC"),
                     (ir.WriteLocal("x", ir.Const(1)),),
                     (ir.WriteLocal("x", ir.Const(2)),)),
            ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC),
        )

    def test_loop_body_definition_is_not_definite(self, testmodel):
        with pytest.raises(IRVerificationError, match="before assignment"):
            _verify(
                testmodel,
                ir.Loop(ir.ReadReg("ACC"),
                        (ir.WriteLocal("x", ir.Const(1)),
                         ir.WriteReg("ACC", ir.Const(0), width=None))),
                ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC),
            )


class TestControlRules:
    def test_unknown_method(self, testmodel):
        with pytest.raises(IRVerificationError, match="unknown control"):
            _verify(testmodel, ir.Control("request_panic", ()))

    def test_wrong_arity(self, testmodel):
        with pytest.raises(IRVerificationError, match="1 argument"):
            _verify(testmodel, ir.Control("request_stall", ()))
        with pytest.raises(IRVerificationError, match="0 argument"):
            _verify(testmodel,
                    ir.Control("request_halt", (ir.Const(1),)))


class TestLoopRules:
    def test_constant_true_condition(self, testmodel):
        with pytest.raises(IRVerificationError, match="constant true"):
            _verify(testmodel, ir.Loop(ir.Const(1), ()))

    def test_constant_false_condition_is_fine(self, testmodel):
        _verify(testmodel, ir.Loop(
            ir.Const(0), (ir.WriteReg("ACC", ir.Const(1), **ACC),)
        ))

    def test_invariant_condition(self, testmodel):
        # The body only touches R; nothing can change ACC, and nothing
        # can trap out of the loop.
        with pytest.raises(IRVerificationError, match="invariant"):
            _verify(testmodel, ir.Loop(
                ir.ReadReg("ACC"),
                (ir.WriteElem("R", ir.Const(0), ir.Const(1),
                              width=32, signed=True),),
            ))

    def test_body_writing_the_condition_is_fine(self, testmodel):
        _verify(testmodel, ir.Loop(
            ir.ReadReg("ACC"),
            (ir.WriteReg(
                "ACC", ir.Alu("-", ir.ReadReg("ACC"), ir.Const(1)), **ACC
            ),),
        ))

    def test_trap_capable_body_is_fine(self, testmodel):
        # Division can fault, so the loop has a run-time exit.
        _verify(testmodel, ir.Loop(
            ir.ReadReg("ACC"),
            (ir.WriteElem(
                "R", ir.Const(0),
                ir.Alu("/", ir.Const(8), ir.ReadElem("R", ir.Const(1))),
                width=32, signed=True,
            ),),
        ))


class TestEnableState:
    def test_default_override_round_trips(self):
        previous = verify.set_verify_default(False)
        try:
            assert previous is True  # the suite-wide autouse fixture
            assert not verify.enabled()
            assert verify.set_verify_default(True) is False
            assert verify.enabled()
        finally:
            verify.set_verify_default(previous)

    def test_environment_variable(self, monkeypatch):
        previous = verify.set_verify_default(None)
        try:
            monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
            assert not verify.enabled()
            monkeypatch.setenv("REPRO_VERIFY_IR", "0")
            assert not verify.enabled()
            monkeypatch.setenv("REPRO_VERIFY_IR", "1")
            assert verify.enabled()
        finally:
            verify.set_verify_default(previous)

    def test_cli_flag_enables_verification(self, tmp_path, capsys):
        from repro.apps import build_fir
        from repro.cli import sim_main

        previous = verify.set_verify_default(None)
        try:
            app = build_fir("tinydsp", taps=4, samples=8)
            asm = tmp_path / "fir.asm"
            asm.write_text(app.source)
            rc = sim_main(["tinydsp", str(asm), "--verify-ir"])
            assert rc == 0
            assert verify.enabled()
        finally:
            verify.set_verify_default(previous)
        capsys.readouterr()


# -- seeded pass bugs ---------------------------------------------------------


def _bug_wrong_width(func, model, stats):
    """A 'canonicalisation' pass that rewrites widths to a wrong value."""
    func.ops = tuple(
        ir.WriteReg(op.name, op.value, width=8, signed=op.signed)
        if isinstance(op, ir.WriteReg) and op.width is not None
        else op
        for op in func.ops
    )
    return func


def _bug_drop_definition(func, model, stats):
    """An over-eager 'DCE' that deletes every local definition."""
    func.ops = tuple(
        op for op in func.ops if not isinstance(op, ir.WriteLocal)
    )
    return func


def _bug_misplace_control(func, model, stats):
    """A pass that mangles control requests into an unknown method."""
    func.ops = tuple(
        ir.Control("request_warp", op.args)
        if isinstance(op, ir.Control) else op
        for op in func.ops
    )
    return func


class TestSeededPassBugs:
    """run_passes must catch each seeded bug and name the pass."""

    def _input(self):
        return _func(
            ir.WriteLocal("x", ir.Alu("+", ir.ReadReg("ACC"), ir.Const(1))),
            ir.WriteReg("ACC", ir.ReadLocal("x"), **ACC),
            ir.Control("request_halt", ()),
        )

    @pytest.mark.parametrize("buggy_pass,detail", [
        (_bug_wrong_width, "width 8"),
        (_bug_drop_definition, "before assignment"),
        (_bug_misplace_control, "unknown control"),
    ])
    def test_bug_caught_and_attributed(self, testmodel, buggy_pass, detail):
        with pytest.raises(IRVerificationError) as excinfo:
            ir.run_passes(self._input(), testmodel,
                          passes=(ir.fold_constants, buggy_pass))
        message = str(excinfo.value)
        assert "after %s" % buggy_pass.__name__ in message
        assert detail in message

    def test_healthy_passes_stay_clean(self, testmodel):
        func = ir.run_passes(self._input(), testmodel)
        verify_function(func, testmodel)

    def test_malformed_input_blamed_on_pre_pass(self, testmodel):
        bad = _func(ir.WriteReg("ACC", ir.ReadLocal("ghost"), **ACC))
        with pytest.raises(IRVerificationError, match="pre-pass"):
            ir.run_passes(bad, testmodel)

    def test_disabled_verifier_lets_bugs_through(self, testmodel):
        """Without verification the same bug miscompiles silently --
        the reason the suite runs with it enabled."""
        previous = verify.set_verify_default(False)
        try:
            func = ir.run_passes(
                self._input(), testmodel,
                passes=(ir.fold_constants, _bug_wrong_width),
            )
        finally:
            verify.set_verify_default(previous)
        with pytest.raises(IRVerificationError):
            verify_function(func, testmodel)


# -- pass-pipeline property: cleanliness and semantics preserved --------------

# Trap-free value grammar over the testmodel: no division, modulo or
# shifts (those may fault or explode), element indices constant and in
# range.  ``a`` and ``b`` are locals defined by the prelude.
_GLOBAL_LEAVES = st.one_of(
    st.integers(min_value=-128, max_value=127).map(ir.Const),
    st.just(ir.ReadReg("ACC")),
    st.integers(min_value=0, max_value=7).map(
        lambda i: ir.ReadElem("R", ir.Const(i))
    ),
)

_LEAVES = st.one_of(
    _GLOBAL_LEAVES,
    st.sampled_from(["a", "b"]).map(ir.ReadLocal),
)


def _extend(children):
    return st.one_of(
        st.tuples(
            st.sampled_from(["+", "-", "*", "&", "|", "^", "==", "<", "&&"]),
            children, children,
        ).map(lambda t: ir.Alu(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["-", "~", "!"]), children).map(
            lambda t: ir.Unary(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: ir.Select(t[0], t[1], t[2])
        ),
        st.tuples(children, st.integers(min_value=1, max_value=16)).map(
            lambda t: ir.Intrinsic("sext", (t[0], ir.Const(t[1])))
        ),
    )


_VALUES = st.recursive(_LEAVES, _extend, max_leaves=6)

# Prelude values must not read locals: they *define* the locals.
_PRELUDE_VALUES = st.recursive(_GLOBAL_LEAVES, _extend, max_leaves=6)

_WRITES = st.one_of(
    _VALUES.map(lambda v: ir.WriteReg("ACC", v, width=16, signed=True)),
    st.tuples(st.integers(min_value=0, max_value=7), _VALUES).map(
        lambda t: ir.WriteElem("R", ir.Const(t[0]), t[1],
                               width=32, signed=True)
    ),
    st.tuples(st.integers(min_value=0, max_value=63), _VALUES).map(
        lambda t: ir.WriteElem("dmem", ir.Const(t[0]), t[1],
                               width=32, signed=True)
    ),
    st.tuples(st.sampled_from(["a", "b"]), _VALUES).map(
        lambda t: ir.WriteLocal(t[0], t[1])
    ),
)

_OPS = st.one_of(
    _WRITES,
    st.tuples(_VALUES, st.lists(_WRITES, max_size=2),
              st.lists(_WRITES, max_size=2)).map(
        lambda t: ir.Guard(t[0], tuple(t[1]), tuple(t[2]))
    ),
)

_FUNCTIONS = st.tuples(_PRELUDE_VALUES, _PRELUDE_VALUES,
                       st.lists(_OPS, max_size=6)).map(
    lambda t: _func(ir.WriteLocal("a", t[0]), ir.WriteLocal("b", t[1]),
                    *t[2])
)


def _execute(func, model):
    """Run ``func`` on a fresh state; returns the state snapshot."""
    state = ProcessorState(model)
    control = PipelineControl()
    state.ACC = 5
    for i in range(8):
        state.R[i] = i * 3 - 7
    ir.PythonExecBackend().compile_function(func, state, control)()
    return state.snapshot()


class TestPassProperties:
    @given(func=_FUNCTIONS)
    def test_each_pass_preserves_cleanliness_and_semantics(
        self, testmodel, func
    ):
        verify_function(func, testmodel, context="generated")
        reference = _execute(
            ir.IRFunction(name=func.name, ops=func.ops), testmodel
        )
        current_ops = func.ops
        for pipeline_pass in ir.DEFAULT_PASSES:
            staged = ir.IRFunction(name=func.name, ops=current_ops)
            staged = pipeline_pass(staged, testmodel, ir.PassStats())
            verify_function(
                staged, testmodel,
                context="after %s" % pipeline_pass.__name__,
            )
            assert _execute(
                ir.IRFunction(name=staged.name, ops=staged.ops,
                              helpers=staged.helpers),
                testmodel,
            ) == reference
            current_ops = staged.ops

    @given(func=_FUNCTIONS)
    def test_full_pipeline_preserves_semantics(self, testmodel, func):
        reference = _execute(
            ir.IRFunction(name=func.name, ops=func.ops), testmodel
        )
        optimized = ir.run_passes(func, testmodel)  # verifies at each step
        assert _execute(optimized, testmodel) == reference
